//! Corpus profiles: how a synthetic population is composed.
//!
//! A [`CorpusProfile`] bundles everything the generator needs — population
//! size, base seed, archetype weights, and a [`MisconfigMix`] — behind a
//! builder. The named profiles of [`CorpusProfile::named`] form the
//! scenario matrix: one profile per deployment landscape the reproduction
//! wants to study (`ij census --synthetic N --profile <name>`).

use rand::{rngs::StdRng, Rng};

use super::archetypes::Archetype;
use super::inject::MisconfigMix;

/// A complete recipe for a synthetic population. Build via
/// [`CorpusProfile::builder`] or start from a named scenario with
/// [`CorpusProfile::named`].
#[derive(Debug, Clone)]
pub struct CorpusProfile {
    name: String,
    apps: usize,
    seed: u64,
    weights: Vec<(Archetype, u32)>,
    mix: MisconfigMix,
}

impl Default for CorpusProfile {
    fn default() -> Self {
        CorpusProfile::builder().build()
    }
}

impl CorpusProfile {
    /// Starts a profile from scratch (all archetypes evenly weighted,
    /// baseline mix, 100 applications, seed 42).
    pub fn builder() -> CorpusProfileBuilder {
        CorpusProfileBuilder::default()
    }

    /// The named scenario matrix. Every name accepted by the CLI's
    /// `--profile` flag resolves here:
    ///
    /// | name | population |
    /// |---|---|
    /// | `baseline` | all five archetypes, Table-2-calibrated rates |
    /// | `mesh-heavy` | dominated by microservice meshes |
    /// | `monolith-heavy` | dominated by monoliths + sidecars |
    /// | `pipeline-heavy` | dominated by data pipelines |
    /// | `legacy` | hostNetwork-heavy estates, few policies |
    /// | `policy-mature` | tight policies, rare misconfigurations |
    pub fn named(name: &str) -> Option<CorpusProfile> {
        let builder = match name {
            "baseline" => CorpusProfile::builder(),
            "mesh-heavy" => CorpusProfile::builder()
                .weight(Archetype::MicroserviceMesh, 6)
                .weight(Archetype::Monolith, 1)
                .weight(Archetype::DataPipeline, 1)
                .weight(Archetype::HostNetworkLegacy, 1)
                .weight(Archetype::PolicyMature, 1),
            "monolith-heavy" => CorpusProfile::builder()
                .weight(Archetype::MicroserviceMesh, 1)
                .weight(Archetype::Monolith, 6)
                .weight(Archetype::DataPipeline, 1)
                .weight(Archetype::HostNetworkLegacy, 1)
                .weight(Archetype::PolicyMature, 1),
            "pipeline-heavy" => CorpusProfile::builder()
                .weight(Archetype::MicroserviceMesh, 1)
                .weight(Archetype::Monolith, 1)
                .weight(Archetype::DataPipeline, 6)
                .weight(Archetype::HostNetworkLegacy, 1)
                .weight(Archetype::PolicyMature, 1),
            "legacy" => CorpusProfile::builder()
                .weight(Archetype::MicroserviceMesh, 1)
                .weight(Archetype::Monolith, 2)
                .weight(Archetype::DataPipeline, 1)
                .weight(Archetype::HostNetworkLegacy, 5)
                .weight(Archetype::PolicyMature, 0),
            "policy-mature" => CorpusProfile::builder()
                .weight(Archetype::MicroserviceMesh, 1)
                .weight(Archetype::Monolith, 1)
                .weight(Archetype::DataPipeline, 1)
                .weight(Archetype::HostNetworkLegacy, 0)
                .weight(Archetype::PolicyMature, 7)
                .mix(MisconfigMix::baseline().scaled(0.5)),
            _ => return None,
        };
        Some(builder.name(name).build())
    }

    /// Every name [`named`](Self::named) accepts, in documentation order.
    pub const NAMES: [&'static str; 6] = [
        "baseline",
        "mesh-heavy",
        "monolith-heavy",
        "pipeline-heavy",
        "legacy",
        "policy-mature",
    ];

    /// The full scenario matrix (one profile per [`NAMES`](Self::NAMES)
    /// entry), at the profile's default size and seed.
    pub fn scenario_matrix() -> Vec<CorpusProfile> {
        Self::NAMES
            .iter()
            .map(|n| CorpusProfile::named(n).expect("every listed name resolves"))
            .collect()
    }

    /// Profile name (for display).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Population size.
    pub fn apps(&self) -> usize {
        self.apps
    }

    /// Base seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The injection mix.
    pub fn mix(&self) -> &MisconfigMix {
        &self.mix
    }

    /// Archetype weights (zero-weight entries are never drawn).
    pub fn weights(&self) -> &[(Archetype, u32)] {
        &self.weights
    }

    /// Same profile, different population size.
    pub fn with_apps(mut self, apps: usize) -> Self {
        self.apps = apps;
        self
    }

    /// Same profile, different base seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Same profile, different mix.
    pub fn with_mix(mut self, mix: MisconfigMix) -> Self {
        self.mix = mix;
        self
    }

    /// Weighted archetype draw.
    pub(crate) fn pick_archetype(&self, rng: &mut StdRng) -> Archetype {
        let total: u64 = self.weights.iter().map(|(_, w)| u64::from(*w)).sum();
        debug_assert!(total > 0, "builder guarantees a positive total weight");
        let mut ticket = rng.gen_range(0..total);
        for (archetype, weight) in &self.weights {
            let weight = u64::from(*weight);
            if ticket < weight {
                return *archetype;
            }
            ticket -= weight;
        }
        // Unreachable with a positive total; keep a deterministic fallback.
        self.weights[self.weights.len() - 1].0
    }
}

/// Builder for [`CorpusProfile`]; obtained via [`CorpusProfile::builder`].
#[derive(Debug, Clone)]
pub struct CorpusProfileBuilder {
    name: String,
    apps: usize,
    seed: u64,
    weights: Vec<(Archetype, u32)>,
    mix: MisconfigMix,
}

impl Default for CorpusProfileBuilder {
    fn default() -> Self {
        CorpusProfileBuilder {
            name: "custom".to_string(),
            apps: 100,
            seed: 42,
            weights: Archetype::ALL.map(|a| (a, 1)).to_vec(),
            mix: MisconfigMix::baseline(),
        }
    }
}

impl CorpusProfileBuilder {
    /// Display name.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Population size.
    pub fn apps(mut self, apps: usize) -> Self {
        self.apps = apps;
        self
    }

    /// Base seed (generation and census both derive from it).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets one archetype's weight (replacing its previous weight).
    pub fn weight(mut self, archetype: Archetype, weight: u32) -> Self {
        match self.weights.iter_mut().find(|(a, _)| *a == archetype) {
            Some(slot) => slot.1 = weight,
            None => self.weights.push((archetype, weight)),
        }
        self
    }

    /// Replaces the injection mix.
    pub fn mix(mut self, mix: MisconfigMix) -> Self {
        self.mix = mix;
        self
    }

    /// Finalizes the profile. If every weight is zero the even default is
    /// restored, so a draw is always possible.
    pub fn build(self) -> CorpusProfile {
        let mut weights = self.weights;
        if weights.iter().all(|(_, w)| *w == 0) {
            weights = Archetype::ALL.map(|a| (a, 1)).to_vec();
        }
        CorpusProfile {
            name: self.name,
            apps: self.apps,
            seed: self.seed,
            weights,
            mix: self.mix,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn every_named_profile_resolves() {
        for name in CorpusProfile::NAMES {
            let profile = CorpusProfile::named(name).expect(name);
            assert_eq!(profile.name(), name);
        }
        assert!(CorpusProfile::named("nope").is_none());
        assert_eq!(
            CorpusProfile::scenario_matrix().len(),
            CorpusProfile::NAMES.len()
        );
    }

    #[test]
    fn zero_weights_fall_back_to_even() {
        let profile = CorpusProfile::builder()
            .weight(Archetype::MicroserviceMesh, 0)
            .weight(Archetype::Monolith, 0)
            .weight(Archetype::DataPipeline, 0)
            .weight(Archetype::HostNetworkLegacy, 0)
            .weight(Archetype::PolicyMature, 0)
            .build();
        assert!(profile.weights().iter().any(|(_, w)| *w > 0));
    }

    #[test]
    fn zero_weight_archetypes_are_never_drawn() {
        let profile = CorpusProfile::named("legacy").expect("legacy profile");
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..256 {
            assert_ne!(profile.pick_archetype(&mut rng), Archetype::PolicyMature);
        }
    }

    #[test]
    fn overrides_keep_the_rest_of_the_profile() {
        let profile = CorpusProfile::named("mesh-heavy")
            .expect("mesh-heavy")
            .with_apps(500)
            .with_seed(7);
        assert_eq!(profile.apps(), 500);
        assert_eq!(profile.seed(), 7);
        assert_eq!(profile.name(), "mesh-heavy");
    }
}
