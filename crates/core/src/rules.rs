//! The machine-readable rules (§4.2.1), one function per misconfiguration
//! family. Each rule takes the same context and emits findings; the engine
//! decides which rules run (hybrid vs static-only vs runtime-only).

use crate::compact::{m4_global_collisions_compact, GlobalAppModel};
use crate::finding::{Finding, MisconfigId};
use crate::model::{ComputeUnit, StaticModel};
use crate::symtab::SymbolTable;
use ij_model::{Protocol, Service, TargetPort};
use ij_probe::{ObservedSocket, RuntimeReport};
use std::collections::{BTreeMap, BTreeSet};

/// Everything a rule may look at.
pub struct RuleContext<'a> {
    /// Application (release) under analysis.
    pub app: &'a str,
    /// Static model from the rendered objects.
    pub statics: &'a StaticModel,
    /// Runtime observations (absent in static-only mode).
    pub runtime: Option<&'a RuntimeReport>,
    /// `(pod qualified name, owning unit qualified name)` pairs; bare pods
    /// own themselves.
    pub ownership: &'a [(String, String)],
    /// True when the chart's template set defines NetworkPolicy resources
    /// (even if none rendered) — distinguishes the two M6 flavours.
    pub chart_defines_policies: bool,
}

impl<'a> RuleContext<'a> {
    /// Stable sockets observed across all pods of a unit (deduplicated).
    pub(crate) fn unit_stable(&self, unit: &str) -> BTreeSet<ObservedSocket> {
        let mut out = BTreeSet::new();
        let Some(rt) = self.runtime else { return out };
        for (pod, owner) in self.ownership {
            if owner == unit {
                if let Some(pr) = rt.pod(pod) {
                    out.extend(pr.stable.iter().copied());
                }
            }
        }
        out
    }

    /// True when any pod of the unit exhibited dynamic ports.
    pub(crate) fn unit_has_dynamic(&self, unit: &str) -> bool {
        let Some(rt) = self.runtime else { return false };
        self.ownership
            .iter()
            .filter(|(_, owner)| owner == unit)
            .any(|(pod, _)| rt.pod(pod).is_some_and(|p| p.has_dynamic_ports()))
    }

    /// True when the unit has at least one observed pod (rules about
    /// runtime deltas only make sense then).
    pub(crate) fn unit_observed(&self, unit: &str) -> bool {
        let Some(rt) = self.runtime else { return false };
        self.ownership
            .iter()
            .any(|(pod, owner)| owner == unit && rt.pod(pod).is_some())
    }
}

/// M1 — open ports that are not declared. Stable sockets only: dynamic ones
/// are M2's domain.
pub fn m1_undeclared_open_ports(ctx: &RuleContext<'_>) -> Vec<Finding> {
    let mut findings = Vec::new();
    for unit in &ctx.statics.units {
        if !ctx.unit_observed(&unit.name) {
            continue;
        }
        for socket in ctx.unit_stable(&unit.name) {
            if !unit.declares(socket.port, socket.protocol) {
                findings.push(
                    Finding::new(
                        MisconfigId::M1,
                        ctx.app,
                        &unit.name,
                        format!(
                            "container listens on {}/{} but the port is not declared",
                            socket.port, socket.protocol
                        ),
                    )
                    .with_port(socket.port, socket.protocol),
                );
            }
        }
    }
    findings
}

/// M2 — dynamic (ephemeral) ports, one finding per affected compute unit.
pub fn m2_dynamic_ports(ctx: &RuleContext<'_>) -> Vec<Finding> {
    ctx.statics
        .units
        .iter()
        .filter(|u| ctx.unit_has_dynamic(&u.name))
        .map(|u| {
            Finding::new(
                MisconfigId::M2,
                ctx.app,
                &u.name,
                "container allocates OS-assigned ephemeral ports that change across restarts",
            )
        })
        .collect()
}

/// M3 — declared ports that are not open.
///
/// Ports that a service forwards to are excluded here: when a *service*
/// references a declared-but-closed port the issue is classified as M5A (or
/// M5C for headless services), not double-counted as M3 — matching the
/// paper's disjoint per-class accounting in Table 2.
pub fn m3_declared_not_open(ctx: &RuleContext<'_>) -> Vec<Finding> {
    let mut findings = Vec::new();
    for unit in &ctx.statics.units {
        if !ctx.unit_observed(&unit.name) {
            continue;
        }
        let service_targets = service_targeted_ports(ctx.statics, unit);
        let stable = ctx.unit_stable(&unit.name);
        let mut seen: BTreeSet<(u16, Protocol)> = BTreeSet::new();
        for (port, protocol) in unit.declared_ports() {
            if !seen.insert((port, protocol)) {
                continue;
            }
            if service_targets.contains(&(port, protocol)) {
                continue;
            }
            if !stable.contains(&ObservedSocket { port, protocol }) {
                findings.push(
                    Finding::new(
                        MisconfigId::M3,
                        ctx.app,
                        &unit.name,
                        format!("declared port {port}/{protocol} is never opened at runtime"),
                    )
                    .with_port(port, protocol),
                );
            }
        }
    }
    findings
}

/// The `(port, protocol)` pairs that services selecting `unit` forward to.
fn service_targeted_ports(statics: &StaticModel, unit: &ComputeUnit) -> BTreeSet<(u16, Protocol)> {
    let mut out = BTreeSet::new();
    for svc in &statics.services {
        if svc.spec.selector.is_empty()
            || svc.meta.namespace != unit.namespace
            || !unit.labels.contains_all(&svc.spec.selector)
        {
            continue;
        }
        for sp in &svc.spec.ports {
            let resolved = match &sp.target_port {
                TargetPort::Number(n) => Some(*n),
                TargetPort::Name(name) => unit.resolve_port_name(name),
            };
            if let Some(port) = resolved {
                out.insert((port, sp.protocol));
            }
        }
    }
    out
}

/// M4A — compute unit collision: distinct units carrying identical,
/// non-empty label sets. One finding per collision group.
pub fn m4a_unit_collisions(ctx: &RuleContext<'_>) -> Vec<Finding> {
    collision_groups(&ctx.statics.units)
        .into_iter()
        .map(|group| {
            let names: Vec<&str> = group.iter().map(|u| u.name.as_str()).collect();
            Finding::new(
                MisconfigId::M4A,
                ctx.app,
                names[0],
                format!(
                    "compute units share the identical label set `{}`: {}",
                    group[0].labels,
                    names.join(", ")
                ),
            )
        })
        .collect()
}

/// Groups units by `(namespace, full label set)`, returning groups of ≥2.
fn collision_groups(units: &[ComputeUnit]) -> Vec<Vec<&ComputeUnit>> {
    let mut by_labels: BTreeMap<(String, String), Vec<&ComputeUnit>> = BTreeMap::new();
    for u in units {
        if u.labels.is_empty() {
            continue;
        }
        by_labels
            .entry((u.namespace.clone(), u.labels.to_string()))
            .or_default()
            .push(u);
    }
    by_labels.into_values().filter(|g| g.len() >= 2).collect()
}

/// M4B — service label collision: two or more services targeting the same
/// compute unit. One finding per unit.
pub fn m4b_service_collisions(ctx: &RuleContext<'_>) -> Vec<Finding> {
    let mut findings = Vec::new();
    for unit in &ctx.statics.units {
        let selecting: Vec<&Service> = ctx
            .statics
            .services
            .iter()
            .filter(|s| {
                !s.spec.selector.is_empty()
                    && s.meta.namespace == unit.namespace
                    && unit.labels.contains_all(&s.spec.selector)
            })
            .collect();
        if selecting.len() >= 2 {
            let names: Vec<String> = selecting.iter().map(|s| s.meta.qualified_name()).collect();
            findings.push(Finding::new(
                MisconfigId::M4B,
                ctx.app,
                &unit.name,
                format!(
                    "multiple services target this compute unit: {}",
                    names.join(", ")
                ),
            ));
        }
    }
    findings
}

/// M4C — compute unit subset collision: one service selecting several
/// *unrelated* units (units whose full label sets differ). One finding per
/// service.
pub fn m4c_subset_collisions(ctx: &RuleContext<'_>) -> Vec<Finding> {
    let mut findings = Vec::new();
    for svc in &ctx.statics.services {
        let selected = ctx.statics.units_selected_by(svc);
        if selected.len() < 2 {
            continue;
        }
        let distinct_label_sets: BTreeSet<String> =
            selected.iter().map(|u| u.labels.to_string()).collect();
        if distinct_label_sets.len() >= 2 {
            let names: Vec<&str> = selected.iter().map(|u| u.name.as_str()).collect();
            findings.push(Finding::new(
                MisconfigId::M4C,
                ctx.app,
                svc.meta.qualified_name(),
                format!(
                    "service selector `{}` captures unrelated compute units: {}",
                    svc.spec.selector,
                    names.join(", ")
                ),
            ));
        }
    }
    findings
}

/// M5 family — services with incorrect references.
pub fn m5_service_references(ctx: &RuleContext<'_>) -> Vec<Finding> {
    let mut findings = Vec::new();
    for svc in &ctx.statics.services {
        let selected = ctx.statics.units_selected_by(svc);
        // M5D: no selector, or a selector that matches nothing.
        if selected.is_empty() {
            let why = if svc.spec.selector.is_empty() {
                "service has no selector".to_string()
            } else {
                format!("selector `{}` matches no compute unit", svc.spec.selector)
            };
            findings.push(Finding::new(
                MisconfigId::M5D,
                ctx.app,
                svc.meta.qualified_name(),
                why,
            ));
            continue;
        }
        for sp in &svc.spec.ports {
            // Resolve the target against the selected units.
            let resolved: Option<u16> = match &sp.target_port {
                TargetPort::Number(n) => Some(*n),
                TargetPort::Name(name) => selected.iter().find_map(|u| u.resolve_port_name(name)),
            };
            let Some(target) = resolved else {
                // A named target no selected unit declares.
                let name = match &sp.target_port {
                    TargetPort::Name(n) => n.as_str(),
                    TargetPort::Number(_) => unreachable!("numbers always resolve"),
                };
                findings.push(
                    Finding::new(
                        MisconfigId::M5B,
                        ctx.app,
                        svc.meta.qualified_name(),
                        format!(
                            "service targets port name `{name}` that no selected unit declares"
                        ),
                    )
                    .with_port(sp.port, sp.protocol),
                );
                continue;
            };
            let declared_somewhere = selected.iter().any(|u| u.declares(target, sp.protocol));
            if !declared_somewhere {
                findings.push(
                    Finding::new(
                        MisconfigId::M5B,
                        ctx.app,
                        svc.meta.qualified_name(),
                        format!(
                            "service targets {target}/{} which no selected unit declares",
                            sp.protocol
                        ),
                    )
                    .with_port(target, sp.protocol),
                );
                continue;
            }
            // Declared: check whether it is actually open (needs runtime).
            if ctx.runtime.is_some() {
                let observed_units: Vec<_> = selected
                    .iter()
                    .filter(|u| ctx.unit_observed(&u.name))
                    .collect();
                if observed_units.is_empty() {
                    continue;
                }
                let open = observed_units.iter().any(|u| {
                    ctx.unit_stable(&u.name).contains(&ObservedSocket {
                        port: target,
                        protocol: sp.protocol,
                    })
                });
                if !open {
                    let (id, what) = if svc.is_headless() {
                        (MisconfigId::M5C, "headless service port is not available")
                    } else {
                        (
                            MisconfigId::M5A,
                            "service targets a declared but unopened port",
                        )
                    };
                    findings.push(
                        Finding::new(
                            id,
                            ctx.app,
                            svc.meta.qualified_name(),
                            format!("{what}: {target}/{}", sp.protocol),
                        )
                        .with_port(target, sp.protocol),
                    );
                }
            }
        }
    }
    findings
}

/// M6 — lack of (enabled) network policies: nothing rendered a
/// NetworkPolicy. The detail distinguishes "none defined" from "defined in
/// the chart but not enabled".
pub fn m6_missing_policies(ctx: &RuleContext<'_>) -> Vec<Finding> {
    if !ctx.statics.policies.is_empty() {
        return Vec::new();
    }
    if ctx.statics.units.is_empty() {
        // Nothing to protect; an empty bundle is not a finding.
        return Vec::new();
    }
    let detail = if ctx.chart_defines_policies {
        "chart defines NetworkPolicies but they are not enabled by default"
    } else {
        "no NetworkPolicy restricts the application's pods"
    };
    vec![Finding::new(MisconfigId::M6, ctx.app, ctx.app, detail)]
}

/// M7 — compute units binding to the host network.
pub fn m7_host_network(ctx: &RuleContext<'_>) -> Vec<Finding> {
    ctx.statics
        .units
        .iter()
        .filter(|u| u.host_network)
        .map(|u| {
            Finding::new(
                MisconfigId::M7,
                ctx.app,
                &u.name,
                "pod template sets hostNetwork: true, bypassing NetworkPolicies",
            )
        })
        .collect()
}

/// M4\* — cross-application label collisions, evaluated over the static
/// models of every application destined for the same cluster.
///
/// This is a thin adapter: it interns the models into a scratch
/// [`SymbolTable`] and delegates to the flat-memory pass
/// ([`crate::m4_global_collisions_compact`]), which the streamed corpus
/// census also drives directly (without materializing `StaticModel`s at
/// all). One implementation, two entry points — findings are
/// byte-identical by construction.
pub fn m4_global_collisions(apps: &[(String, StaticModel)]) -> Vec<Finding> {
    let mut table = SymbolTable::new();
    let models: Vec<GlobalAppModel> = apps
        .iter()
        .map(|(app, model)| GlobalAppModel::intern(app, model, &mut table))
        .collect();
    m4_global_collisions_compact(&models, &table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::StaticModel;
    use ij_model::decode_manifests;
    use ij_probe::{PodRuntime, RuntimeReport};

    fn statics(src: &str) -> StaticModel {
        StaticModel::from_objects(&decode_manifests(src).unwrap())
    }

    fn ctx<'a>(
        statics: &'a StaticModel,
        runtime: Option<&'a RuntimeReport>,
        ownership: &'a [(String, String)],
    ) -> RuleContext<'a> {
        RuleContext {
            app: "test",
            statics,
            runtime,
            ownership,
            chart_defines_policies: false,
        }
    }

    const TWO_NS_SERVICES: &str = "\
apiVersion: v1
kind: Pod
metadata:
  name: web
  labels:
    app: web
spec:
  containers:
    - name: c
      image: img
      ports:
        - containerPort: 80
---
apiVersion: v1
kind: Service
metadata:
  name: svc-a
spec:
  selector:
    app: web
  ports:
    - port: 80
---
apiVersion: v1
kind: Service
metadata:
  name: svc-b
  namespace: other
spec:
  selector:
    app: web
  ports:
    - port: 80
";

    #[test]
    fn m4b_ignores_cross_namespace_services() {
        // Two services share a selector, but they live in different
        // namespaces, so only one can actually target the pod: no M4B.
        let m = statics(TWO_NS_SERVICES);
        let findings = m4b_service_collisions(&ctx(&m, None, &[]));
        assert!(findings.is_empty(), "{findings:#?}");
    }

    #[test]
    fn m4a_ignores_cross_namespace_label_twins() {
        let m = statics(
            "\
apiVersion: v1
kind: Pod
metadata:
  name: a
  labels:
    app: twin
spec:
  containers:
    - name: c
      image: img
---
apiVersion: v1
kind: Pod
metadata:
  name: b
  namespace: other
  labels:
    app: twin
spec:
  containers:
    - name: c
      image: img
",
        );
        assert!(m4a_unit_collisions(&ctx(&m, None, &[])).is_empty());
    }

    #[test]
    fn m5b_unresolvable_named_target() {
        let m = statics(
            "\
apiVersion: v1
kind: Pod
metadata:
  name: web
  labels:
    app: web
spec:
  containers:
    - name: c
      image: img
      ports:
        - name: http
          containerPort: 80
---
apiVersion: v1
kind: Service
metadata:
  name: svc
spec:
  selector:
    app: web
  ports:
    - port: 443
      targetPort: https
",
        );
        let findings = m5_service_references(&ctx(&m, None, &[]));
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].id, MisconfigId::M5B);
        assert!(findings[0].detail.contains("https"));
    }

    #[test]
    fn port_rules_skip_units_without_observed_pods() {
        // A workload whose pods never came up (e.g. image pull failure in a
        // real cluster): no runtime evidence, so no M1/M3 claims about it.
        let m = statics(
            "\
apiVersion: v1
kind: Pod
metadata:
  name: web
  labels:
    app: web
spec:
  containers:
    - name: c
      image: img
      ports:
        - containerPort: 80
",
        );
        let runtime = RuntimeReport::default(); // no pods observed
        let ownership: Vec<(String, String)> = vec![];
        let c = ctx(&m, Some(&runtime), &ownership);
        assert!(m1_undeclared_open_ports(&c).is_empty());
        assert!(m3_declared_not_open(&c).is_empty());
    }

    #[test]
    fn m1_dedupes_across_replicas() {
        let m = statics(
            "\
apiVersion: apps/v1
kind: Deployment
metadata:
  name: web
spec:
  replicas: 3
  selector:
    matchLabels:
      app: web
  template:
    metadata:
      labels:
        app: web
    spec:
      containers:
        - name: c
          image: img
          ports:
            - containerPort: 80
",
        );
        let mut runtime = RuntimeReport::default();
        let mut ownership = Vec::new();
        for i in 0..3 {
            let pod = format!("default/web-{i}");
            runtime.pods.insert(
                pod.clone(),
                PodRuntime {
                    stable: vec![
                        ij_probe::ObservedSocket::tcp(80),
                        ij_probe::ObservedSocket::tcp(9100),
                    ],
                    dynamic: vec![],
                },
            );
            ownership.push((pod, "default/web".to_string()));
        }
        let c = ctx(&m, Some(&runtime), &ownership);
        let findings = m1_undeclared_open_ports(&c);
        assert_eq!(findings.len(), 1, "one finding per unit, not per replica");
        assert_eq!(findings[0].port, Some(9100));
    }

    #[test]
    fn m6_silent_on_empty_bundle() {
        let m = statics("apiVersion: v1\nkind: ConfigMap\nmetadata:\n  name: only-config\n");
        assert!(m6_missing_policies(&ctx(&m, None, &[])).is_empty());
    }

    #[test]
    fn m2_protocol_specific_declarations() {
        // A UDP listener on a port that is declared as TCP only is still M1.
        let m = statics(
            "\
apiVersion: v1
kind: Pod
metadata:
  name: dns
  labels:
    app: dns
spec:
  containers:
    - name: c
      image: img
      ports:
        - containerPort: 53
",
        );
        let mut runtime = RuntimeReport::default();
        runtime.pods.insert(
            "default/dns".to_string(),
            PodRuntime {
                stable: vec![
                    ij_probe::ObservedSocket::tcp(53),
                    ij_probe::ObservedSocket::udp(53),
                ],
                dynamic: vec![],
            },
        );
        let ownership = vec![("default/dns".to_string(), "default/dns".to_string())];
        let c = ctx(&m, Some(&runtime), &ownership);
        let findings = m1_undeclared_open_ports(&c);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].protocol, Some(ij_model::Protocol::Udp));
    }
}
