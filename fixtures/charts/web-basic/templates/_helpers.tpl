{{- define "web-basic.labels" }}
app: web-basic
release: {{ .Release.Name }}
{{- end }}
