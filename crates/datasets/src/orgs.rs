//! The six-organization corpus: one chart per Table 2 application, whose
//! injected plans sum exactly to Table 2 of the paper (634 findings, 259
//! affected applications), with the named applications of Figures 3a/3b
//! carrying their published profiles and the §4.3.2 policy postures of
//! Figure 4b. (The paper's text says 287 applications; its own Table 2 rows
//! sum to 290 — this corpus follows the table.)

use crate::spec::{AppSpec, NetpolSpec, Org, Plan};

const MISSING: NetpolSpec = NetpolSpec::Missing;
const DISABLED: NetpolSpec = NetpolSpec::DefinedDisabled { loose: false };
const DISABLED_LOOSE: NetpolSpec = NetpolSpec::DefinedDisabled { loose: true };
const ENABLED: NetpolSpec = NetpolSpec::Enabled { loose: false };
const ENABLED_LOOSE: NetpolSpec = NetpolSpec::Enabled { loose: true };

/// The full corpus (290 charts — the sum of Table 2's dataset sizes) in
/// dataset order.
pub fn corpus() -> Vec<AppSpec> {
    let mut apps = Vec::with_capacity(290);
    apps.extend(banzai_cloud());
    apps.extend(bitnami());
    apps.extend(cncf());
    apps.extend(eea());
    apps.extend(prometheus_community());
    apps.extend(wikimedia());
    apps
}

fn spec(name: &str, org: Org, version: &str, plan: Plan) -> AppSpec {
    AppSpec::new(name, org, version, plan)
}

/// Cycles one-unit increments over a set of plans.
struct Spreader {
    cursor: usize,
}

impl Spreader {
    fn new() -> Self {
        Spreader { cursor: 0 }
    }

    fn spread(&mut self, plans: &mut [Plan], n: usize, bump: impl Fn(&mut Plan)) {
        if plans.is_empty() {
            return;
        }
        for _ in 0..n {
            bump(&mut plans[self.cursor % plans.len()]);
            self.cursor += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// Banzai Cloud — 51 charts, all affected.
// Table 2 row: M1 13, M2 2, M3 17, M4A 8, M4B 4, M5B 2, M6 51.
// ---------------------------------------------------------------------------
fn banzai_cloud() -> Vec<AppSpec> {
    let org = Org::BanzaiCloud;
    let mut apps = Vec::new();
    // Figure 3b names two istio-operator variants with six concurrent types.
    for name in ["istio-operator", "istio-operator-stable"] {
        apps.push(spec(
            name,
            org,
            "2.1.4",
            Plan {
                m1: 2,
                m2: 1,
                m3: 2,
                m4a: 1,
                m5b: 1,
                netpol: MISSING,
                ..Default::default()
            },
        ));
    }
    // Four operators with mid-weight profiles (Figure 4a's 5–9 band).
    let mediums = [
        ("kafka-operator", true),
        ("logging-operator", true),
        ("vault-operator", false),
        ("thanos-operator", false),
    ];
    for (name, with_m4b) in mediums {
        apps.push(spec(
            name,
            org,
            "0.9.2",
            Plan {
                m1: 1,
                m3: 2,
                m4a: 1,
                m4b: usize::from(with_m4b),
                netpol: MISSING,
                ..Default::default()
            },
        ));
    }
    // The remaining 45 charts: every one lacks policies; the residual
    // counts (M1 5, M3 5, M4A 2, M4B 2) spread across them.
    let names = [
        "allspark",
        "anchore-image-validator",
        "athens",
        "aws-asg-tags",
        "backyards",
        "cadence",
        "cluster-autoscaler-ca",
        "dast-operator",
        "ecr-exporter",
        "espejo",
        "etcd-backup",
        "fluentd-output",
        "gosecrets",
        "hollowtrees",
        "imps",
        "instance-terminator",
        "istio-ingress",
        "jwt-to-rbac",
        "k8s-objectmatcher",
        "kafka-schema-registry",
        "koperator-ui",
        "kube-metrics-adapter",
        "kurun",
        "log-socket",
        "logging-demo",
        "mysql-ha",
        "nodepool-labels-operator",
        "objectstore",
        "one-eye",
        "pipeline-ui",
        "pke-installer",
        "prometheus-jmx",
        "pvc-operator",
        "rawfile-csi",
        "satellite",
        "scale-target",
        "spot-config",
        "spot-scheduler",
        "supertubes",
        "telescopes",
        "terraform-runner",
        "thanos-swap",
        "vault-secrets-webhook",
        "velero-plugin",
        "zorp-ingress",
    ];
    let mut plans: Vec<Plan> = names.iter().map(|_| Plan::default()).collect();
    let mut sp = Spreader::new();
    sp.spread(&mut plans, 5, |p| p.m1 += 1);
    sp.spread(&mut plans, 5, |p| p.m3 += 1);
    sp.spread(&mut plans, 2, |p| p.m4a += 1);
    sp.spread(&mut plans, 2, |p| p.m4b += 1);
    for (name, plan) in names.iter().zip(plans) {
        apps.push(spec(name, org, "1.3.0", plan));
    }
    apps
}

// ---------------------------------------------------------------------------
// Bitnami — 158 charts (base catalog + AKS variants), all affected.
// Table 2 row: M1 106, M2 26, M3 40, M4A 25, M4B 10, M4* 5, M5A 2, M5B 14,
//              M5C 3, M6 156, M7 7.
// ---------------------------------------------------------------------------
fn bitnami() -> Vec<AppSpec> {
    let org = Org::Bitnami;
    let mut apps = vec![
        // Named applications of Figures 3a/3b, with their M4* partner
        // tokens.
        spec(
            "kube-prometheus",
            org,
            "8.15.3",
            Plan {
                m1: 6,
                m2: 1,
                m3: 2,
                m4a: 1,
                m4b: 1,
                m5b: 1,
                m7: 2,
                netpol: MISSING,
                m4star_tokens: vec!["kube-prometheus-stack-operator"],
                ..Default::default()
            },
        ),
        spec(
            "kube-prometheus-aks",
            org,
            "8.1.11",
            Plan {
                m1: 7,
                m2: 1,
                m3: 2,
                m4a: 1,
                m4b: 1,
                m5b: 1,
                m7: 2,
                netpol: MISSING,
                m4star_tokens: vec!["kube-prometheus-stack-operator"],
                ..Default::default()
            },
        ),
        spec(
            "metallb",
            org,
            "4.5.6",
            Plan {
                m1: 7,
                m2: 1,
                m7: 1,
                netpol: MISSING,
                m4star_tokens: vec!["metallb-system"],
                ..Default::default()
            },
        ),
        spec(
            "metallb-aks",
            org,
            "2.0.3",
            Plan {
                m1: 8,
                m2: 1,
                m7: 1,
                netpol: MISSING,
                m4star_tokens: vec!["metallb-system"],
                ..Default::default()
            },
        ),
        spec(
            "pinniped-aks",
            org,
            "0.4.5",
            Plan {
                m1: 4,
                m2: 1,
                m3: 2,
                m4a: 1,
                m5b: 1,
                m7: 1,
                netpol: MISSING,
                ..Default::default()
            },
        ),
        spec(
            "jaeger",
            org,
            "1.2.7",
            Plan {
                m1: 6,
                m2: 1,
                m3: 2,
                netpol: MISSING,
                ..Default::default()
            },
        ),
        spec(
            "clickhouse",
            org,
            "3.5.5",
            Plan {
                m1: 2,
                m2: 1,
                m3: 1,
                m4a: 1,
                m5c: 1,
                netpol: MISSING,
                m4star_tokens: vec!["clickhouse-cluster"],
                ..Default::default()
            },
        ),
        spec(
            "clickhouse-aks",
            org,
            "1.0.3",
            Plan {
                m1: 2,
                m2: 1,
                m3: 1,
                m4b: 1,
                m5c: 1,
                netpol: MISSING,
                m4star_tokens: vec!["clickhouse-cluster"],
                ..Default::default()
            },
        ),
        spec(
            "zookeeper-aks",
            org,
            "10.2.4",
            Plan {
                m1: 1,
                m2: 1,
                m3: 1,
                m4a: 1,
                m5a: 1,
                netpol: MISSING,
                m4star_tokens: vec!["zookeeper-ensemble"],
                ..Default::default()
            },
        ),
        spec(
            "grafana-tempo-aks",
            org,
            "1.4.5",
            Plan {
                m1: 1,
                m2: 1,
                m3: 1,
                m4b: 1,
                m5b: 1,
                netpol: MISSING,
                m4star_tokens: vec!["tempo-stack"],
                ..Default::default()
            },
        ),
        // Two charts with policies enabled by default (hence no M6), still
        // affected through one undeclared port each.
        spec(
            "postgresql",
            org,
            "12.8.0",
            Plan {
                m1: 1,
                netpol: ENABLED,
                ..Default::default()
            },
        ),
        spec(
            "redis",
            org,
            "17.11.3",
            Plan {
                m1: 1,
                netpol: ENABLED,
                ..Default::default()
            },
        ),
        // Six heavy charts (Figure 4a's ≥10 band; the tight half follows in
        // the loop below). The three loose ones are the §4.3.2 Bitnami
        // "affected" charts; their server replicas are sized so the
        // reachable-pod count lands at the paper's 14 (1 dynamic).
        spec(
            "rabbitmq",
            org,
            "11.9.1",
            Plan {
                m1: 5,
                m2: 1,
                m3: 2,
                m4a: 1,
                server_replicas: 5,
                netpol: DISABLED_LOOSE,
                ..Default::default()
            },
        ),
        spec(
            "kafka",
            org,
            "22.1.5",
            Plan {
                m1: 5,
                m3: 2,
                m4a: 1,
                server_replicas: 4,
                netpol: DISABLED_LOOSE,
                ..Default::default()
            },
        ),
        spec(
            "harbor",
            org,
            "16.7.2",
            Plan {
                m1: 5,
                m3: 2,
                m4a: 1,
                server_replicas: 4,
                netpol: DISABLED_LOOSE,
                ..Default::default()
            },
        ),
    ];
    for name in ["redis-cluster", "mongodb-sharded", "postgresql-ha"] {
        apps.push(spec(
            name,
            org,
            "8.6.1",
            Plan {
                m1: 5,
                m2: 1,
                m3: 2,
                m4a: 1,
                netpol: DISABLED,
                ..Default::default()
            },
        ));
    }

    // Ten mid-weight charts (5–6 findings each).
    let mediums = [
        "mysql",
        "mariadb",
        "cassandra",
        "elasticsearch",
        "etcd",
        "minio",
        "keycloak",
        "spark",
        "airflow",
        "consul",
    ];
    for (i, name) in mediums.iter().enumerate() {
        apps.push(spec(
            name,
            org,
            "10.2.1",
            Plan {
                m1: 2,
                m2: usize::from(i < 2),
                m3: 1,
                m4a: 1,
                netpol: DISABLED,
                ..Default::default()
            },
        ));
    }

    // The remaining 130 charts: base names plus AKS variants. The residual
    // Table 2 counts spread across them; 33 of them complete the 48
    // policy-defining charts of Figure 4b; M4* partners for the AKS-named
    // pairs live here.
    let light_names = light_bitnami_names();
    assert_eq!(light_names.len(), 130, "bitnami catalog arithmetic");
    let mut plans: Vec<Plan> = light_names.iter().map(|_| Plan::default()).collect();
    let mut sp = Spreader::new();
    sp.spread(&mut plans, 10, |p| p.m1 += 1);
    sp.spread(&mut plans, 10, |p| p.m2 += 1);
    sp.spread(&mut plans, 6, |p| p.m3 += 1);
    sp.spread(&mut plans, 4, |p| p.m4a += 1);
    sp.spread(&mut plans, 6, |p| p.m4b += 1);
    sp.spread(&mut plans, 1, |p| p.m5a += 1);
    sp.spread(&mut plans, 10, |p| p.m5b += 1);
    sp.spread(&mut plans, 1, |p| p.m5c += 1);
    for (i, plan) in plans.iter_mut().enumerate() {
        if i < 30 {
            plan.netpol = DISABLED;
        }
    }
    for (name, mut plan) in light_names.iter().zip(plans) {
        match *name {
            "zookeeper" => plan.m4star_tokens.push("zookeeper-ensemble"),
            "grafana-tempo" => plan.m4star_tokens.push("tempo-stack"),
            _ => {}
        }
        apps.push(spec(name, org, "6.4.2", plan));
    }
    apps
}

/// 130 further Bitnami chart names (base catalog plus `-aks` variants).
fn light_bitnami_names() -> Vec<&'static str> {
    vec![
        // Base catalog.
        "zookeeper",
        "grafana-tempo",
        "nginx",
        "wordpress",
        "apache",
        "tomcat",
        "memcached",
        "mongodb",
        "influxdb",
        "solr",
        "ghost",
        "drupal",
        "joomla",
        "magento",
        "moodle",
        "odoo",
        "opencart",
        "osclass",
        "phpbb",
        "prestashop",
        "redmine",
        "suitecrm",
        "dokuwiki",
        "mediawiki-bn",
        "matomo",
        "discourse",
        "harbor-scanner",
        "argo-workflows",
        "appsmith",
        "cert-manager-bn",
        "clamav",
        "concourse-bn",
        "contour",
        "dataplatform",
        "deepspeed",
        "ejbca",
        "external-dns",
        "fluent-bit",
        "fluentd",
        "flink",
        "grafana",
        "grafana-loki",
        "grafana-mimir",
        "haproxy",
        "jenkins",
        "jupyterhub",
        "kibana",
        "kong",
        "kubeapps",
        "kubernetes-event-exporter",
        "kuberay",
        "logstash",
        "mastodon",
        "milvus",
        "mxnet",
        "nats",
        "neo4j",
        "nessie",
        "nginx-ingress-controller",
        "oauth2-proxy",
        "parse",
        "pgpool",
        "phpmyadmin",
        "pytorch",
        "rediscommander",
        "rekor",
        "schema-registry",
        "sealed-secrets",
        "seaweedfs",
        "sonarqube",
        "supabase",
        "tensorflow",
        "thanos-bn",
        "traefik",
        "valkey",
        "vault-bn",
        "whereabouts",
        "wildfly",
        "zipkin",
        "multus",
        // AKS-tailored variants.
        "nginx-aks",
        "wordpress-aks",
        "apache-aks",
        "tomcat-aks",
        "memcached-aks",
        "mongodb-aks",
        "influxdb-aks",
        "solr-aks",
        "ghost-aks",
        "drupal-aks",
        "joomla-aks",
        "magento-aks",
        "moodle-aks",
        "odoo-aks",
        "opencart-aks",
        "osclass-aks",
        "phpbb-aks",
        "prestashop-aks",
        "redmine-aks",
        "suitecrm-aks",
        "dokuwiki-aks",
        "matomo-aks",
        "discourse-aks",
        "argo-workflows-aks",
        "appsmith-aks",
        "contour-aks",
        "ejbca-aks",
        "external-dns-aks",
        "fluent-bit-aks",
        "fluentd-aks",
        "flink-aks",
        "grafana-aks",
        "grafana-loki-aks",
        "haproxy-aks",
        "jenkins-aks",
        "jupyterhub-aks",
        "kibana-aks",
        "kong-aks",
        "kubeapps-aks",
        "logstash-aks",
        "nats-aks",
        "neo4j-aks",
        "oauth2-proxy-aks",
        "parse-aks",
        "pgpool-aks",
        "phpmyadmin-aks",
        "sealed-secrets-aks",
        "sonarqube-aks",
        "traefik-aks",
        "wildfly-aks",
    ]
}

// ---------------------------------------------------------------------------
// CNCF — 10 charts, 7 affected.
// Table 2 row: M1 10, M3 4, M5A 6, M6 7.
// ---------------------------------------------------------------------------
fn cncf() -> Vec<AppSpec> {
    let org = Org::Cncf;
    vec![
        spec(
            "linkerd",
            org,
            "2.13.4",
            Plan {
                m1: 2,
                m5a: 1,
                netpol: DISABLED,
                ..Default::default()
            },
        ),
        spec(
            "argo-cd",
            org,
            "5.36.0",
            Plan {
                m1: 2,
                m3: 1,
                m5a: 1,
                netpol: MISSING,
                ..Default::default()
            },
        ),
        spec(
            "flux2",
            org,
            "2.9.2",
            Plan {
                m1: 2,
                m3: 1,
                m5a: 1,
                netpol: MISSING,
                ..Default::default()
            },
        ),
        spec(
            "etcd-cluster",
            org,
            "9.0.4",
            Plan {
                m1: 2,
                m5a: 1,
                netpol: MISSING,
                ..Default::default()
            },
        ),
        spec(
            "envoy-gateway",
            org,
            "0.4.0",
            Plan {
                m1: 1,
                m5a: 1,
                netpol: MISSING,
                ..Default::default()
            },
        ),
        spec(
            "opentelemetry-collector",
            org,
            "0.62.0",
            Plan {
                m1: 1,
                m3: 1,
                netpol: MISSING,
                ..Default::default()
            },
        ),
        spec(
            "backstage",
            org,
            "1.8.2",
            Plan {
                m3: 1,
                m5a: 1,
                netpol: MISSING,
                ..Default::default()
            },
        ),
        spec("cert-manager", org, "1.12.2", Plan::clean()),
        spec("coredns", org, "1.24.1", Plan::clean()),
        spec("falco", org, "3.3.0", Plan::clean()),
    ]
}

// ---------------------------------------------------------------------------
// EEA — 19 charts, 8 affected, every chart ships enabled policies (M6 = 0).
// Table 2 row: M1 7, M3 1, M4B 1.
// ---------------------------------------------------------------------------
fn eea() -> Vec<AppSpec> {
    let org = Org::Eea;
    let mut apps = Vec::new();
    // Seven charts with one undeclared port each behind a loose policy;
    // replica sizing backs the §4.3.2 reachable-pod count (13).
    let loose_m1 = [
        ("nessus", 2),
        ("plone", 2),
        ("volto", 2),
        ("eea-website", 2),
        ("climate-adapt", 2),
        ("biodiversity", 2),
        ("copernicus-land", 1),
    ];
    for (name, replicas) in loose_m1 {
        apps.push(spec(
            name,
            org,
            "2.1.0",
            Plan {
                m1: 1,
                server_replicas: replicas,
                netpol: ENABLED_LOOSE,
                ..Default::default()
            },
        ));
    }
    // The eighth affected chart: configuration-only issues.
    apps.push(spec(
        "forests-portal",
        org,
        "1.4.1",
        Plan {
            m3: 1,
            m4b: 1,
            netpol: ENABLED_LOOSE,
            ..Default::default()
        },
    ));
    // Eleven clean charts with tight policies.
    for name in [
        "freshwater",
        "industry-emissions",
        "air-quality",
        "noise-portal",
        "marine-atlas",
        "soil-portal",
        "energy-dashboard",
        "transport-stats",
        "waste-tracker",
        "chemicals-portal",
        "land-monitor",
    ] {
        apps.push(spec(name, org, "1.0.3", Plan::clean()));
    }
    apps
}

// ---------------------------------------------------------------------------
// Prometheus Community — 25 charts, all affected.
// Table 2 row: M1 42, M2 4, M3 3, M5A 1, M5B 4, M6 25, M7 4.
// ---------------------------------------------------------------------------
fn prometheus_community() -> Vec<AppSpec> {
    let org = Org::PrometheusCommunity;
    let mut apps = vec![
        // Figure 3a/3b champion: kube-prometheus-stack, 20 findings, the
        // widest type spread the dataset permits.
        spec(
            "kube-prometheus-stack",
            org,
            "48.4.0",
            Plan {
                m1: 12,
                m2: 1,
                m3: 2,
                m5a: 1,
                m5b: 2,
                m7: 1,
                server_replicas: 15,
                netpol: DISABLED_LOOSE,
                ..Default::default()
            },
        ),
        spec(
            "prometheus",
            org,
            "23.4.0",
            Plan {
                m1: 9,
                m2: 1,
                m3: 1,
                m5b: 1,
                server_replicas: 9,
                netpol: DISABLED_LOOSE,
                ..Default::default()
            },
        ),
        spec(
            "prometheus-node-exporter",
            org,
            "4.22.0",
            Plan {
                m1: 5,
                m2: 1,
                m7: 1,
                server_replicas: 5,
                netpol: DISABLED_LOOSE,
                ..Default::default()
            },
        ),
        spec(
            "prometheus-smartctl-exporter",
            org,
            "0.5.0",
            Plan {
                m1: 4,
                m7: 1,
                netpol: MISSING,
                ..Default::default()
            },
        ),
        // Two more defined-but-disabled charts complete Figure 4b's five.
        spec(
            "alertmanager",
            org,
            "0.33.1",
            Plan {
                m1: 1,
                netpol: DISABLED,
                ..Default::default()
            },
        ),
        spec(
            "pushgateway",
            org,
            "2.4.2",
            Plan {
                m1: 1,
                netpol: DISABLED,
                ..Default::default()
            },
        ),
    ];
    // Nineteen exporters with the residual counts.
    let names = [
        "blackbox-exporter",
        "snmp-exporter",
        "mysql-exporter",
        "postgres-exporter",
        "redis-exporter",
        "elasticsearch-exporter",
        "mongodb-exporter",
        "memcached-exporter",
        "consul-exporter",
        "statsd-exporter",
        "cloudwatch-exporter",
        "stackdriver-exporter",
        "json-exporter",
        "windows-exporter",
        "ipmi-exporter",
        "kafka-exporter",
        "nginx-exporter",
        "process-exporter",
        "systemd-exporter",
    ];
    let mut plans: Vec<Plan> = names.iter().map(|_| Plan::default()).collect();
    let mut sp = Spreader::new();
    sp.spread(&mut plans, 10, |p| p.m1 += 1);
    sp.spread(&mut plans, 1, |p| p.m2 += 1);
    sp.spread(&mut plans, 1, |p| p.m5b += 1);
    sp.spread(&mut plans, 1, |p| p.m7 += 1);
    for (name, plan) in names.iter().zip(plans) {
        apps.push(spec(name, org, "3.1.0", plan));
    }
    apps
}

// ---------------------------------------------------------------------------
// Wikimedia — 27 charts, 10 affected; 25 ship enabled (mostly tight,
// auto-generated) policies, 2 lack policies entirely.
// Table 2 row: M1 10, M2 3, M3 2, M4A 2, M4B 1, M4C 1, M5A 2, M5B 1, M6 2.
// ---------------------------------------------------------------------------
fn wikimedia() -> Vec<AppSpec> {
    let org = Org::Wikimedia;
    let mut apps = vec![
        spec(
            "ipoid",
            org,
            "1.1.0",
            Plan {
                m1: 1,
                m2: 1,
                m4a: 1,
                netpol: ENABLED_LOOSE,
                ..Default::default()
            },
        ),
        spec(
            "mediawiki",
            org,
            "0.7.3",
            Plan {
                m1: 2,
                m3: 1,
                m5a: 1,
                server_replicas: 2,
                netpol: ENABLED_LOOSE,
                ..Default::default()
            },
        ),
        spec(
            "citoid",
            org,
            "0.4.2",
            Plan {
                m1: 1,
                m2: 1,
                m4b: 1,
                netpol: ENABLED_LOOSE,
                ..Default::default()
            },
        ),
        spec(
            "cxserver",
            org,
            "0.9.1",
            Plan {
                m1: 1,
                m2: 1,
                m4c: 1,
                netpol: ENABLED_LOOSE,
                ..Default::default()
            },
        ),
        spec(
            "echostore",
            org,
            "1.2.0",
            Plan {
                m1: 1,
                m3: 1,
                m5a: 1,
                netpol: ENABLED,
                ..Default::default()
            },
        ),
        spec(
            "eventgate",
            org,
            "1.5.4",
            Plan {
                m1: 1,
                m5b: 1,
                netpol: ENABLED,
                ..Default::default()
            },
        ),
        spec(
            "kartotherian",
            org,
            "0.3.8",
            Plan {
                m1: 1,
                netpol: MISSING,
                ..Default::default()
            },
        ),
        spec(
            "mathoid",
            org,
            "0.2.9",
            Plan {
                m1: 1,
                netpol: MISSING,
                ..Default::default()
            },
        ),
        spec(
            "ores",
            org,
            "1.0.6",
            Plan {
                m4a: 1,
                netpol: ENABLED,
                ..Default::default()
            },
        ),
        spec(
            "parsoid",
            org,
            "0.16.1",
            Plan {
                m1: 1,
                netpol: ENABLED,
                ..Default::default()
            },
        ),
    ];
    for name in [
        "proton",
        "push-notifications",
        "recommendation-api",
        "restbase",
        "session-store",
        "shellbox",
        "termbox",
        "wikifeeds",
        "zotero",
        "blubberoid",
        "changeprop",
        "chromium-render",
        "docker-registry",
        "image-suggestion",
        "linkrecommendation",
        "maps",
        "mobileapps",
    ] {
        apps.push(spec(name, org, "0.5.0", Plan::clean()));
    }
    apps
}

#[cfg(test)]
mod tests {
    use super::*;
    use ij_core::MisconfigId;
    use std::collections::BTreeSet;

    /// Table 2 of the paper, verbatim.
    /// Columns: affected, total, M1, M2, M3, M4A, M4B, M4C, M4*, M5A, M5B,
    /// M5C, M5D, M6, M7.
    const TABLE2: [(&str, [usize; 15]); 6] = [
        (
            "Banzai Cloud",
            [51, 51, 13, 2, 17, 8, 4, 0, 0, 0, 2, 0, 0, 51, 0],
        ),
        (
            "Bitnami",
            [158, 158, 106, 26, 40, 25, 10, 0, 5, 2, 14, 3, 0, 156, 7],
        ),
        ("CNCF", [7, 10, 10, 0, 4, 0, 0, 0, 0, 6, 0, 0, 0, 7, 0]),
        ("EEA", [8, 19, 7, 0, 1, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0]),
        (
            "Prometheus C.",
            [25, 25, 42, 4, 3, 0, 0, 0, 0, 1, 4, 0, 0, 25, 4],
        ),
        (
            "Wikimedia",
            [10, 27, 10, 3, 2, 2, 1, 1, 0, 2, 1, 0, 0, 2, 0],
        ),
    ];

    fn org_apps(org: Org) -> Vec<AppSpec> {
        corpus().into_iter().filter(|a| a.org == org).collect()
    }

    fn planned_m4star_per_org() -> std::collections::BTreeMap<Org, usize> {
        // One finding per token group, attributed to the org of the first
        // app carrying the token (all tokens here are intra-Bitnami).
        let mut groups: std::collections::BTreeMap<&str, Vec<Org>> = Default::default();
        for app in corpus() {
            for t in &app.plan.m4star_tokens {
                groups.entry(t).or_default().push(app.org);
            }
        }
        let mut out: std::collections::BTreeMap<Org, usize> = Default::default();
        for (token, orgs) in groups {
            assert!(orgs.len() >= 2, "token {token} has no partner");
            *out.entry(orgs[0]).or_default() += 1;
        }
        out
    }

    #[test]
    fn corpus_matches_table2_population() {
        // Note: the paper's text says 287 applications, but its own Table 2
        // rows sum to 290 (51+158+10+19+25+27). This corpus reproduces the
        // per-dataset counts of Table 2 exactly, hence 290 charts; the
        // discrepancy is documented in EXPERIMENTS.md.
        let apps = corpus();
        assert_eq!(apps.len(), 290);
        let names: BTreeSet<&str> = apps.iter().map(|a| a.name.as_str()).collect();
        assert_eq!(names.len(), 290, "duplicate chart names");
    }

    #[test]
    fn plans_reproduce_table2_exactly() {
        let m4star = planned_m4star_per_org();
        for (org, (name, row)) in Org::ALL.iter().zip(TABLE2) {
            assert_eq!(org.as_str(), name);
            let apps = org_apps(*org);
            let [affected, total, m1, m2, m3, m4a, m4b, m4c, m4s, m5a, m5b, m5c, m5d, m6, m7] = row;
            assert_eq!(apps.len(), total, "{name}: total apps");
            assert_eq!(
                apps.iter().filter(|a| a.plan.is_affected()).count(),
                affected,
                "{name}: affected apps"
            );
            let sum =
                |id: MisconfigId| -> usize { apps.iter().map(|a| a.plan.expected_of(id)).sum() };
            assert_eq!(sum(MisconfigId::M1), m1, "{name}: M1");
            assert_eq!(sum(MisconfigId::M2), m2, "{name}: M2");
            assert_eq!(sum(MisconfigId::M3), m3, "{name}: M3");
            assert_eq!(sum(MisconfigId::M4A), m4a, "{name}: M4A");
            assert_eq!(sum(MisconfigId::M4B), m4b, "{name}: M4B");
            assert_eq!(sum(MisconfigId::M4C), m4c, "{name}: M4C");
            assert_eq!(m4star.get(org).copied().unwrap_or(0), m4s, "{name}: M4*");
            assert_eq!(sum(MisconfigId::M5A), m5a, "{name}: M5A");
            assert_eq!(sum(MisconfigId::M5B), m5b, "{name}: M5B");
            assert_eq!(sum(MisconfigId::M5C), m5c, "{name}: M5C");
            assert_eq!(sum(MisconfigId::M5D), m5d, "{name}: M5D");
            assert_eq!(sum(MisconfigId::M6), m6, "{name}: M6");
            assert_eq!(sum(MisconfigId::M7), m7, "{name}: M7");
        }
    }

    #[test]
    fn grand_totals_match_the_paper() {
        let apps = corpus();
        let local: usize = apps.iter().map(|a| a.plan.expected_local_findings()).sum();
        let global: usize = planned_m4star_per_org().values().sum();
        assert_eq!(local + global, 634, "the paper's 634 misconfigurations");
        assert_eq!(
            apps.iter().filter(|a| a.plan.is_affected()).count(),
            259,
            "the paper's 259 affected applications"
        );
        assert_eq!(apps.len(), 290, "sum of Table 2 dataset sizes");
    }

    #[test]
    fn figure4b_policy_definitions() {
        // (dataset, charts defining policies) per Figure 4b.
        for (org, defined) in [
            (Org::Bitnami, 48),
            (Org::Cncf, 4),
            (Org::Eea, 19),
            (Org::PrometheusCommunity, 5),
            (Org::Wikimedia, 25),
            (Org::BanzaiCloud, 0),
        ] {
            let apps = org_apps(org);
            assert_eq!(
                apps.iter()
                    .filter(|a| a.plan.netpol.defines_policy())
                    .count(),
                defined,
                "{}: policy-defining charts",
                org.as_str()
            );
        }
    }

    #[test]
    fn concentration_matches_section_431() {
        let apps = corpus();
        let totals: Vec<usize> = apps
            .iter()
            .map(|a| a.plan.expected_local_findings())
            .collect();
        let total: usize = totals.iter().sum::<usize>() + 5; // + M4*
        let heavy: Vec<usize> = totals.iter().copied().filter(|&t| t >= 10).collect();
        let heavy_share = heavy.len() as f64 / apps.len() as f64;
        let heavy_findings = heavy.iter().sum::<usize>() as f64 / total as f64;
        // §4.3.1: ~5% of apps hold ≥10 findings ≈ 25% of the total.
        assert!(
            (0.03..=0.07).contains(&heavy_share),
            "heavy app share {heavy_share}"
        );
        assert!(
            (0.20..=0.30).contains(&heavy_findings),
            "heavy finding share {heavy_findings}"
        );
        let mid: Vec<usize> = totals
            .iter()
            .copied()
            .filter(|&t| (5..=9).contains(&t))
            .collect();
        let mid_share = mid.len() as f64 / apps.len() as f64;
        let mid_findings = mid.iter().sum::<usize>() as f64 / total as f64;
        // §4.3.1: ~8% of apps hold 5–9 findings ≈ 22% of the total.
        assert!(
            (0.05..=0.11).contains(&mid_share),
            "mid app share {mid_share}"
        );
        assert!(
            (0.15..=0.28).contains(&mid_findings),
            "mid finding share {mid_findings}"
        );
    }

    #[test]
    fn figure3_named_apps_lead_their_rankings() {
        let apps = corpus();
        let mut by_count: Vec<(&str, usize)> = apps
            .iter()
            .map(|a| (a.name.as_str(), a.plan.expected_local_findings()))
            .collect();
        by_count.sort_by_key(|e| std::cmp::Reverse(e.1));
        assert_eq!(by_count[0].0, "kube-prometheus-stack");
        let top10: Vec<&str> = by_count[..10].iter().map(|(n, _)| *n).collect();
        for name in [
            "kube-prometheus-stack",
            "kube-prometheus",
            "kube-prometheus-aks",
            "metallb",
            "metallb-aks",
            "pinniped-aks",
            "jaeger",
            "prometheus",
        ] {
            assert!(
                top10.contains(&name),
                "{name} missing from figure 3a top 10: {top10:?}"
            );
        }
        let mut by_types: Vec<(&str, usize)> = apps
            .iter()
            .map(|a| (a.name.as_str(), a.plan.expected_types()))
            .collect();
        by_types.sort_by_key(|e| std::cmp::Reverse(e.1));
        let top: Vec<&str> = by_types[..12].iter().map(|(n, _)| *n).collect();
        for name in [
            "kube-prometheus-stack",
            "kube-prometheus",
            "clickhouse",
            "zookeeper-aks",
        ] {
            assert!(
                top.contains(&name),
                "{name} missing from figure 3b leaders: {top:?}"
            );
        }
    }
}
