//! Canonical block-style emitter.
//!
//! The emitter produces two-space-indented block YAML that the parser in this
//! crate round-trips exactly. Scalars are quoted only when a plain rendering
//! would re-parse as a different value (numbers, booleans, null, special
//! characters), which keeps emitted manifests close to hand-written ones.

use crate::value::{write_float, Map, Value};

/// Serializes a value as a block-style YAML document (with trailing newline).
pub fn to_string(value: &Value) -> String {
    let mut out = String::new();
    to_string_into(value, &mut out);
    out
}

/// Serializes into a caller-provided buffer, clearing it first.
///
/// Produces exactly the bytes of [`to_string`]; the buffer's capacity is the
/// only thing that survives between calls, which lets hot loops amortize the
/// emit allocation across documents.
pub fn to_string_into(value: &Value, out: &mut String) {
    out.clear();
    match value {
        Value::Map(m) => emit_map(out, m, 0),
        Value::Seq(s) => emit_seq(out, s, 0),
        scalar => {
            emit_scalar(out, scalar);
            out.push('\n');
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn emit_map(out: &mut String, map: &Map, depth: usize) {
    if map.is_empty() {
        indent(out, depth);
        out.push_str("{}\n");
        return;
    }
    for (k, v) in map.iter() {
        indent(out, depth);
        quote_key(out, k);
        out.push(':');
        emit_entry_value(out, v, depth);
    }
}

fn emit_seq(out: &mut String, seq: &[Value], depth: usize) {
    if seq.is_empty() {
        indent(out, depth);
        out.push_str("[]\n");
        return;
    }
    for item in seq {
        indent(out, depth);
        out.push('-');
        match item {
            Value::Map(m) if !m.is_empty() => {
                // `- key: value` inline first entry, siblings below.
                let mut it = m.iter();
                let (k0, v0) = it.next().expect("non-empty");
                out.push(' ');
                quote_key(out, k0);
                out.push(':');
                emit_entry_value(out, v0, depth + 1);
                for (k, v) in it {
                    indent(out, depth + 1);
                    quote_key(out, k);
                    out.push(':');
                    emit_entry_value(out, v, depth + 1);
                }
            }
            Value::Seq(inner) if !inner.is_empty() => {
                out.push('\n');
                emit_seq(out, inner, depth + 1);
            }
            other => {
                out.push(' ');
                emit_scalar_or_empty_collection(out, other);
                out.push('\n');
            }
        }
    }
}

/// Emits the value side of `key:`. Nested collections go on following lines.
fn emit_entry_value(out: &mut String, v: &Value, depth: usize) {
    match v {
        Value::Map(m) if !m.is_empty() => {
            out.push('\n');
            emit_map(out, m, depth + 1);
        }
        Value::Seq(s) if !s.is_empty() => {
            out.push('\n');
            emit_seq(out, s, depth + 1);
        }
        other => {
            out.push(' ');
            emit_scalar_or_empty_collection(out, other);
            out.push('\n');
        }
    }
}

fn emit_scalar_or_empty_collection(out: &mut String, v: &Value) {
    match v {
        Value::Map(m) if m.is_empty() => out.push_str("{}"),
        Value::Seq(s) if s.is_empty() => out.push_str("[]"),
        other => emit_scalar(out, other),
    }
}

fn emit_scalar(out: &mut String, v: &Value) {
    use std::fmt::Write as _;
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Float(f) => {
            let start = out.len();
            write_float(out, *f);
            // Integral floats past the `{f:.1}` range in `write_float` print
            // without a fraction; restore the dot so they re-parse as floats.
            if f.is_finite() && !out[start..].contains('.') {
                out.push_str(".0");
            }
        }
        Value::Str(s) => quote_str(out, s),
        Value::Seq(_) | Value::Map(_) => unreachable!("collections handled by callers"),
    }
}

fn quote_key(out: &mut String, k: &str) {
    // The parser trims keys, tracks quotes and flow brackets while hunting
    // for the separating colon, and strips ` #` comments; any key the reader
    // would mangle under those rules must be emitted double-quoted.
    let plain_ok = !k.is_empty()
        && k.trim() == k
        && !k.contains(": ")
        && !k.ends_with(':')
        && !k.starts_with(['-', '#'])
        && !k.contains(['"', '\'', '[', ']', '{', '}', '\n', '\r', '\t'])
        && !k.contains(" #");
    if plain_ok {
        out.push_str(k);
    } else {
        quote_double(out, k);
    }
}

fn quote_str(out: &mut String, s: &str) {
    if needs_quoting(s) {
        quote_double(out, s);
    } else {
        out.push_str(s);
    }
}

fn needs_quoting(s: &str) -> bool {
    if s.is_empty() {
        return true;
    }
    // Would re-parse as a non-string scalar, or end the document (`...`).
    if matches!(
        s,
        "~" | "null"
            | "Null"
            | "NULL"
            | "true"
            | "True"
            | "TRUE"
            | "false"
            | "False"
            | "FALSE"
            | "..."
    ) {
        return true;
    }
    if s.parse::<i64>().is_ok() || s.parse::<f64>().is_ok() {
        return true;
    }
    // Structural characters or whitespace that would confuse block parsing.
    if s.starts_with([
        '-', '#', '[', ']', '{', '}', '"', '\'', '>', '|', '&', '*', '!', '%',
    ]) || s.starts_with(char::is_whitespace)
        || s.ends_with(char::is_whitespace)
        || s.contains(": ")
        || s.ends_with(':')
        || s.contains(" #")
        || s.contains(['\n', '\r', '\t'])
    {
        return true;
    }
    false
}

fn quote_double(out: &mut String, s: &str) {
    out.reserve(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            other => out.push(other),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use crate::{parse, to_string, Map, Value};

    fn round_trip(v: &Value) {
        let text = to_string(v);
        let back = parse(&text).unwrap_or_else(|e| panic!("reparse failed: {e}\n---\n{text}"));
        assert_eq!(&back, v, "round trip mismatch for:\n{text}");
    }

    #[test]
    fn scalars_round_trip() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Int(-12),
            Value::Float(3.25),
            Value::str("plain"),
            Value::str("needs: quoting"),
            Value::str("8080"),
            Value::str("true"),
            Value::str(""),
            Value::str("- dash"),
            Value::str("multi\nline"),
            Value::str("tricky \"quotes\" and \\slashes\\"),
        ] {
            round_trip(&v);
        }
    }

    #[test]
    fn nested_structures_round_trip() {
        let mut labels = Map::new();
        labels.insert("app.kubernetes.io/name", Value::str("thanos-query"));
        labels.insert("version", Value::str("0.32.1"));
        let mut meta = Map::new();
        meta.insert("name", Value::str("thanos"));
        meta.insert("labels", Value::Map(labels));
        let mut port = Map::new();
        port.insert("containerPort", Value::Int(10901));
        port.insert("protocol", Value::str("TCP"));
        let mut container = Map::new();
        container.insert("name", Value::str("query"));
        container.insert("ports", Value::Seq(vec![Value::Map(port)]));
        let mut root = Map::new();
        root.insert("metadata", Value::Map(meta));
        root.insert("containers", Value::Seq(vec![Value::Map(container)]));
        root.insert("empty_map", Value::Map(Map::new()));
        root.insert("empty_seq", Value::Seq(vec![]));
        root.insert(
            "nested_seq",
            Value::Seq(vec![Value::Seq(vec![Value::Int(1)])]),
        );
        round_trip(&Value::Map(root));
    }

    #[test]
    fn to_string_into_reuses_dirty_buffers() {
        let mut doc = Map::new();
        doc.insert("kind", Value::str("Service"));
        doc.insert("ports", Value::Seq(vec![Value::Int(80), Value::Int(443)]));
        let doc = Value::Map(doc);
        let mut buf = String::from("stale bytes from a previous, longer document\n---\n");
        crate::to_string_into(&doc, &mut buf);
        assert_eq!(buf, to_string(&doc));
    }

    #[test]
    fn empty_collections_inline() {
        let mut m = Map::new();
        m.insert("podSelector", Value::Map(Map::new()));
        let text = to_string(&Value::Map(m));
        assert_eq!(text, "podSelector: {}\n");
    }
}
