//! `ij` — the command-line interface of the Inside Job analyzer.
//!
//! ```text
//! ij analyze <chart-dir> [--values <file>] [--static-only] [--dot <out.dot>]
//! ij render  <chart-dir> [--values <file>]
//! ij disclose <chart-dir> [--values <file>]
//! ij census  [--org <name>] [--seed <n>] [--threads <n>] [--shards <k>] [--static-only]
//!            [--progress] [--timings] [--synthetic <n>] [--profile <name>] [--mix <rule=rate,...>]
//!            [--rule-pack <file>] [--without-rule <name>]...
//! ij corpus  --describe [--synthetic <n>] [--profile <name>] [--mix <rule=rate,...>] [--seed <n>]
//! ij rules   [--rule-pack <file>] [--explain <name>]
//! ij serve   [--clusters <n>] [--mutations <n>] [--seed <n>] [--profile <name>] [--verify]
//! ij conform <fixtures-dir> [--json <file>] [--report <file>] [--baseline <file>]
//! ij help
//! ```
//!
//! * `analyze` — render the chart, install it into a fresh simulated
//!   cluster, run the hybrid (or static-only) analyzer, print findings with
//!   severities and mitigations; optionally write the effective-connectivity
//!   DOT graph.
//! * `render` — print the rendered manifests.
//! * `disclose` — produce a responsible-disclosure markdown report for the
//!   chart's findings.
//! * `census` — run the evaluation pipeline over the built-in synthetic
//!   corpus (optionally one dataset) and print the Table-2 style breakdown;
//!   `--threads` parallelizes the per-application analyses without changing
//!   a byte of the output, `--progress` streams completion ticks to stderr,
//!   and `--timings` prints the per-phase wall-time breakdown (build /
//!   render / install / probe / analyze) to stderr after the table,
//!   aggregated across all shards and worker threads. With
//!   `--synthetic <n>` the census instead streams `n` procedurally
//!   generated applications through the pipeline (`--profile` picks the
//!   scenario, `--mix` overrides per-rule injection rates).
//!   `--rule-pack` loads a
//!   rule-language pack (registering its rules, shadowing natives of the
//!   same name, and applying its `disable` directives);
//!   `--without-rule <name>` (repeatable) disables one rule by name —
//!   unknown names are usage errors that list the known rules.
//! * `corpus` — describe a population without analyzing it: the built-in
//!   Table-2 corpus by default, or a synthetic population under
//!   `--synthetic`/`--profile`/`--mix`/`--seed`.
//! * `rules` — list the rule registry (name, classes, evidence scope,
//!   native/pack origin, enabled) after optionally applying `--rule-pack`;
//!   `--explain <name>` prints one rule's details, including the pack
//!   expression and message template for pack rules.
//! * `serve` — run the continuous-audit engine: a deterministic churn
//!   workload over one or more tenant clusters, each audited incrementally
//!   after every mutation; `--verify` re-checks each tick against the
//!   full-recompute oracle and fails loudly on any divergence.
//! * `conform` — run the differential conformance harness over a directory
//!   of on-disk charts: every chart is pushed through both render
//!   pipelines, the value-tree render, the policy-index/naive-engine
//!   oracle pair, and the finding interner, and every disagreement or
//!   unsupported feature is reported (never silently skipped). `--json`
//!   and `--report` write the machine-readable results and the ranked
//!   markdown loss report; `--baseline` compares the fresh JSON
//!   byte-for-byte against a committed baseline so CI can gate on "no
//!   unexplained divergence".
//! * `help` — print the full flag reference.
//!
//! Failures map to distinct exit codes so scripts can tell them apart:
//! `2` usage, `3` chart render, `4` cluster install, `1` anything else.
//!
//! Unknown container images behave exactly as declared (no runtime delta),
//! so on-disk charts are analyzed for their *structural* misconfigurations
//! (M4–M7 and service references); pair the library API with a
//! `BehaviorRegistry` to model runtime deltas (M1–M3) for known images.

use inside_job::chart::{Chart, Release};
use inside_job::cluster::{Cluster, ClusterConfig};
use inside_job::core::{
    chart_defines_network_policies, disclosure_report, Analyzer, AppReport, Census, MisconfigId,
    RulePack, RuleRegistry, UnknownRule,
};
use inside_job::datasets::{
    corpus, describe_builtin, run_conformance, CensusError, CensusPipeline, ChartStatus,
    CorpusGenerator, CorpusProfile, Org, PhaseTimings,
};
use inside_job::probe::{connectivity_dot, HostBaseline, RuntimeAnalyzer};
use inside_job::serve::{serve, ServeError, ServeOptions};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::str::FromStr;
use std::sync::Arc;

/// Exit code for malformed invocations.
const EXIT_USAGE: u8 = 2;
/// Exit code when a chart fails to render.
const EXIT_RENDER: u8 = 3;
/// Exit code when the simulated cluster rejects an install.
const EXIT_INSTALL: u8 = 4;

/// A CLI failure carrying its exit code; no user input can panic the
/// binary — every error path flows through here.
struct CliError {
    code: u8,
    message: String,
}

impl CliError {
    fn usage() -> Self {
        CliError {
            code: EXIT_USAGE,
            message: String::new(),
        }
    }

    fn other(message: impl Into<String>) -> Self {
        CliError {
            code: 1,
            message: message.into(),
        }
    }

    fn render(message: impl Into<String>) -> Self {
        CliError {
            code: EXIT_RENDER,
            message: message.into(),
        }
    }
}

impl From<CensusError> for CliError {
    fn from(err: CensusError) -> Self {
        let code = match &err {
            CensusError::Render { .. } => EXIT_RENDER,
            CensusError::Install { .. } => EXIT_INSTALL,
            CensusError::Probe { .. } => 1,
        };
        CliError {
            code,
            message: err.to_string(),
        }
    }
}

struct ChartArgs {
    command: String,
    chart_dir: PathBuf,
    values: Option<PathBuf>,
    static_only: bool,
    dot: Option<PathBuf>,
}

struct CensusArgs {
    org: Option<Org>,
    seed: u64,
    /// True when `--seed` was given explicitly (the default is 42, so the
    /// value alone cannot tell).
    seed_set: bool,
    threads: usize,
    shards: usize,
    static_only: bool,
    progress: bool,
    timings: bool,
    synthetic: Option<usize>,
    profile: Option<String>,
    mix: Option<String>,
    describe: bool,
    rule_pack: Option<PathBuf>,
    without_rules: Vec<String>,
}

struct RulesArgs {
    rule_pack: Option<PathBuf>,
    explain: Option<String>,
}

struct ConformArgs {
    fixtures_dir: PathBuf,
    json: Option<PathBuf>,
    report: Option<PathBuf>,
    baseline: Option<PathBuf>,
}

/// The one-screen flag reference printed by `ij help` (and kept in sync
/// with the CLI contract section of the README by `tests/cli.rs`).
const HELP: &str = "\
ij — hybrid analyzer for Kubernetes network misconfigurations

usage:
  ij analyze  <chart-dir> [--values <file>] [--static-only] [--dot <out.dot>]
  ij render   <chart-dir> [--values <file>]
  ij disclose <chart-dir> [--values <file>]
  ij census   [--org <name>] [--seed <n>] [--threads <n>] [--shards <k>]
              [--static-only] [--progress] [--timings]
              [--synthetic <n>] [--profile <name>] [--mix <rule=rate,...>]
              [--rule-pack <file>] [--without-rule <name>]...
  ij corpus   --describe [--synthetic <n>] [--profile <name>]
              [--mix <rule=rate,...>] [--seed <n>]
  ij rules    [--rule-pack <file>] [--explain <name>]
  ij serve    [--clusters <n>] [--mutations <n>] [--seed <n>]
              [--profile <name>] [--verify]
  ij conform  <fixtures-dir> [--json <file>] [--report <file>]
              [--baseline <file>]
  ij help

flags:
  --values <file>        values overlay applied to the release
  --static-only          disable the runtime rules (static analysis only)
  --dot <out.dot>        write the effective-connectivity DOT graph
  --org <name>           restrict the census to one built-in dataset
  --seed <n>             base seed (default 42)
  --threads <n>          analysis workers; output is identical for every n
  --shards <k>           partitions of the streamed synthetic census (needs
                         --synthetic); output is identical for every k
  --progress             stream per-application completion ticks to stderr
  --timings              print per-phase wall time to stderr after the run
  --synthetic <n>        analyze n procedurally generated applications
  --profile <name>       synthetic scenario: baseline, mesh-heavy,
                         monolith-heavy, pipeline-heavy, legacy, policy-mature
  --mix <rule=rate,...>  override per-rule injection rates, e.g. m1=0.2,m7=0.05
  --describe             print the population summary instead of analyzing
  --rule-pack <file>     load a rule-language pack: its rules register
                         (shadowing natives of the same name) and its
                         disable directives apply
  --without-rule <name>  disable one rule by name (repeatable); unknown
                         names are usage errors listing the known rules
  --explain <name>       print one rule's details (pack rules include their
                         expression and message template)
  --clusters <n>         tenant clusters driven by the serve churn workload
  --mutations <n>        total churn mutations applied across all tenants
  --verify               check every incremental tick against the
                         full-recompute oracle (fails on divergence)
  --json <file>          write the machine-readable conformance results
  --report <file>        write the ranked markdown conformance loss report
  --baseline <file>      compare the fresh conformance JSON byte-for-byte
                         against a committed baseline (exit 0 only when no
                         check diverges and the bytes match)

exit codes:
  0 success, 2 usage, 3 chart render failure, 4 cluster install failure,
  1 any other failure
";

fn usage() -> ExitCode {
    eprintln!(
        "usage: ij <analyze|render|disclose> <chart-dir> [--values <file>] [--static-only] [--dot <out.dot>]
       ij census [--org <name>] [--seed <n>] [--threads <n>] [--shards <k>] [--static-only]
                 [--progress] [--timings] [--synthetic <n>] [--profile <name>] [--mix <rule=rate,...>]
                 [--rule-pack <file>] [--without-rule <name>]...
       ij corpus --describe [--synthetic <n>] [--profile <name>] [--mix <rule=rate,...>] [--seed <n>]
       ij rules [--rule-pack <file>] [--explain <name>]
       ij serve [--clusters <n>] [--mutations <n>] [--seed <n>] [--profile <name>] [--verify]
       ij conform <fixtures-dir> [--json <file>] [--report <file>] [--baseline <file>]
       ij help"
    );
    ExitCode::from(EXIT_USAGE)
}

fn parse_chart_args(command: String, mut argv: std::env::Args) -> Option<ChartArgs> {
    let chart_dir = PathBuf::from(argv.next()?);
    let mut args = ChartArgs {
        command,
        chart_dir,
        values: None,
        static_only: false,
        dot: None,
    };
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--values" => args.values = Some(PathBuf::from(argv.next()?)),
            "--static-only" => args.static_only = true,
            "--dot" => args.dot = Some(PathBuf::from(argv.next()?)),
            _ => return None,
        }
    }
    Some(args)
}

fn parse_census_args(
    mut argv: std::env::Args,
    allow_describe: bool,
) -> Result<CensusArgs, CliError> {
    let mut args = CensusArgs {
        org: None,
        seed: 42,
        seed_set: false,
        threads: 1,
        shards: 1,
        static_only: false,
        progress: false,
        timings: false,
        synthetic: None,
        profile: None,
        mix: None,
        describe: false,
        rule_pack: None,
        without_rules: Vec::new(),
    };
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--org" => {
                let name = argv.next().ok_or_else(CliError::usage)?;
                let org = Org::ALL
                    .into_iter()
                    .find(|o| o.as_str().eq_ignore_ascii_case(&name));
                args.org = Some(org.ok_or_else(|| {
                    let known: Vec<&str> = Org::ALL.iter().map(|o| o.as_str()).collect();
                    CliError::other(format!(
                        "unknown dataset `{name}`; expected one of: {}",
                        known.join(", ")
                    ))
                })?);
            }
            "--seed" => {
                let raw = argv.next().ok_or_else(CliError::usage)?;
                args.seed = raw
                    .parse()
                    .map_err(|_| CliError::other(format!("invalid --seed `{raw}`")))?;
                args.seed_set = true;
            }
            "--threads" => {
                let raw = argv.next().ok_or_else(CliError::usage)?;
                args.threads = raw
                    .parse()
                    .map_err(|_| CliError::other(format!("invalid --threads `{raw}`")))?;
            }
            "--shards" => {
                let raw = argv.next().ok_or_else(CliError::usage)?;
                args.shards = raw
                    .parse()
                    .map_err(|_| CliError::other(format!("invalid --shards `{raw}`")))?;
            }
            "--static-only" => args.static_only = true,
            "--progress" => args.progress = true,
            "--timings" => args.timings = true,
            "--synthetic" => {
                let raw = argv.next().ok_or_else(CliError::usage)?;
                args.synthetic = Some(
                    raw.parse()
                        .map_err(|_| CliError::other(format!("invalid --synthetic `{raw}`")))?,
                );
            }
            "--profile" => args.profile = Some(argv.next().ok_or_else(CliError::usage)?),
            "--mix" => args.mix = Some(argv.next().ok_or_else(CliError::usage)?),
            "--describe" if allow_describe => args.describe = true,
            "--rule-pack" => {
                args.rule_pack = Some(PathBuf::from(argv.next().ok_or_else(CliError::usage)?));
            }
            "--without-rule" => {
                args.without_rules
                    .push(argv.next().ok_or_else(CliError::usage)?);
            }
            _ => return Err(CliError::usage()),
        }
    }
    Ok(args)
}

fn parse_conform_args(mut argv: std::env::Args) -> Result<ConformArgs, CliError> {
    let fixtures_dir = PathBuf::from(argv.next().ok_or_else(CliError::usage)?);
    let mut args = ConformArgs {
        fixtures_dir,
        json: None,
        report: None,
        baseline: None,
    };
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--json" => {
                args.json = Some(PathBuf::from(argv.next().ok_or_else(CliError::usage)?));
            }
            "--report" => {
                args.report = Some(PathBuf::from(argv.next().ok_or_else(CliError::usage)?));
            }
            "--baseline" => {
                args.baseline = Some(PathBuf::from(argv.next().ok_or_else(CliError::usage)?));
            }
            _ => return Err(CliError::usage()),
        }
    }
    Ok(args)
}

/// `ij conform`: run the differential harness over every chart in the
/// fixtures directory, print the per-chart summary, optionally write the
/// JSON/markdown artifacts, and exit non-zero on any loss. With
/// `--baseline`, success instead means "no divergence *and* the fresh JSON
/// equals the committed baseline byte-for-byte" — an unsupported feature
/// recorded in the baseline is explained, a new one is a regression.
fn run_conform_command(args: ConformArgs) -> Result<(), CliError> {
    let report = run_conformance(&args.fixtures_dir).map_err(|e| CliError::other(e.to_string()))?;
    for c in &report.charts {
        match &c.status {
            ChartStatus::Conformant => println!(
                "{:<18} conformant   {} object(s), {} finding(s), {} verdict(s)",
                c.chart, c.objects, c.findings, c.verdicts
            ),
            ChartStatus::Unsupported { feature } => {
                println!(
                    "{:<18} unsupported  {}",
                    c.chart,
                    feature.lines().next().unwrap_or("")
                );
            }
            ChartStatus::Divergent { check, detail } => {
                println!(
                    "{:<18} DIVERGENT    {check}: {}",
                    c.chart,
                    detail.lines().next().unwrap_or("")
                );
            }
        }
    }
    println!(
        "{} chart(s): {} conformant, {} unsupported, {} divergent",
        report.charts.len(),
        report.conformant(),
        report.unsupported(),
        report.divergent()
    );
    let json = report.to_json();
    if let Some(path) = &args.json {
        std::fs::write(path, &json)
            .map_err(|e| CliError::other(format!("{}: {e}", path.display())))?;
    }
    if let Some(path) = &args.report {
        std::fs::write(path, report.to_markdown())
            .map_err(|e| CliError::other(format!("{}: {e}", path.display())))?;
    }
    match &args.baseline {
        Some(path) => {
            let expected = std::fs::read_to_string(path)
                .map_err(|e| CliError::other(format!("{}: {e}", path.display())))?;
            if report.divergent() > 0 {
                return Err(CliError::other(format!(
                    "{} divergent chart(s) — every divergence is a bug",
                    report.divergent()
                )));
            }
            if json != expected {
                return Err(CliError::other(format!(
                    "conformance results drifted from {} — regenerate it with \
                     --json and review the diff",
                    path.display()
                )));
            }
            Ok(())
        }
        None if report.all_conformant() => Ok(()),
        None => Err(CliError::other(format!(
            "{} unsupported and {} divergent chart(s)",
            report.unsupported(),
            report.divergent()
        ))),
    }
}

fn parse_rules_args(mut argv: std::env::Args) -> Result<RulesArgs, CliError> {
    let mut args = RulesArgs {
        rule_pack: None,
        explain: None,
    };
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--rule-pack" => {
                args.rule_pack = Some(PathBuf::from(argv.next().ok_or_else(CliError::usage)?));
            }
            "--explain" => args.explain = Some(argv.next().ok_or_else(CliError::usage)?),
            _ => return Err(CliError::usage()),
        }
    }
    Ok(args)
}

/// An [`UnknownRule`] is a usage error: the invocation named a rule that
/// does not exist, and the message already lists the known ones.
fn unknown_rule(err: UnknownRule) -> CliError {
    CliError {
        code: EXIT_USAGE,
        message: err.to_string(),
    }
}

/// Reads and compiles a rule pack. Load failures (lex, parse, type-check,
/// structure) exit with the usage code and render the pack-file position —
/// `path: line L, column C: message`.
fn load_rule_pack(path: &Path) -> Result<RulePack, CliError> {
    let src = std::fs::read_to_string(path)
        .map_err(|e| CliError::other(format!("{}: {e}", path.display())))?;
    RulePack::from_str(&src).map_err(|err| CliError {
        code: EXIT_USAGE,
        message: format!("{}: {err}", path.display()),
    })
}

/// Builds the standard registry, applies `--rule-pack`, then the
/// `--without-rule` disables — shared by `census` and `rules` so both
/// subcommands see the exact same rule set for the same flags.
fn assemble_registry(
    rule_pack: Option<&Path>,
    without_rules: &[String],
) -> Result<RuleRegistry, CliError> {
    let mut registry = RuleRegistry::standard();
    if let Some(path) = rule_pack {
        let pack = load_rule_pack(path)?;
        pack.register_into(&mut registry).map_err(unknown_rule)?;
    }
    for name in without_rules {
        registry.try_disable(name).map_err(unknown_rule)?;
    }
    Ok(registry)
}

fn run_rules_command(args: RulesArgs) -> Result<(), CliError> {
    let registry = assemble_registry(args.rule_pack.as_deref(), &[])?;
    if let Some(name) = &args.explain {
        let entry = registry.try_get(name).map_err(unknown_rule)?;
        let classes: Vec<&str> = entry.classes().iter().map(|c| c.as_str()).collect();
        println!("rule {}", entry.name());
        println!("  classes:  {}", classes.join(","));
        println!("  scope:    {}", entry.scope().as_str());
        println!("  origin:   {}", entry.origin().as_str());
        println!(
            "  enabled:  {}",
            if entry.is_enabled() { "yes" } else { "no" }
        );
        match entry.pack_rule() {
            Some(rule) => {
                println!("  select:   {}", rule.select().as_str());
                println!("  when:     {}", rule.expression());
                println!("  message:  {}", rule.message_template());
            }
            None => {
                println!(
                    "  body:     native Rust (crates/core/src/rules.rs); load a pack \
                     with a rule of the same name to shadow it"
                );
            }
        }
        return Ok(());
    }
    println!(
        "{:<8} {:<20} {:<8} {:<7} ENABLED",
        "NAME", "CLASSES", "SCOPE", "ORIGIN"
    );
    for entry in registry.entries() {
        let classes: Vec<&str> = entry.classes().iter().map(|c| c.as_str()).collect();
        println!(
            "{:<8} {:<20} {:<8} {:<7} {}",
            entry.name(),
            classes.join(","),
            entry.scope().as_str(),
            entry.origin().as_str(),
            if entry.is_enabled() { "yes" } else { "no" }
        );
    }
    Ok(())
}

fn parse_serve_args(mut argv: std::env::Args) -> Result<ServeOptions, CliError> {
    let mut options = ServeOptions::default();
    let parse_num = |flag: &str, raw: String| {
        raw.parse::<usize>()
            .map_err(|_| CliError::other(format!("invalid {flag} `{raw}`")))
    };
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--clusters" => {
                let raw = argv.next().ok_or_else(CliError::usage)?;
                options.clusters = parse_num("--clusters", raw)?;
            }
            "--mutations" => {
                let raw = argv.next().ok_or_else(CliError::usage)?;
                options.mutations = parse_num("--mutations", raw)?;
            }
            "--seed" => {
                let raw = argv.next().ok_or_else(CliError::usage)?;
                options.seed = raw
                    .parse()
                    .map_err(|_| CliError::other(format!("invalid --seed `{raw}`")))?;
            }
            "--profile" => options.profile = argv.next().ok_or_else(CliError::usage)?,
            "--verify" => options.verify = true,
            _ => return Err(CliError::usage()),
        }
    }
    Ok(options)
}

fn run_serve_command(options: ServeOptions) -> Result<(), CliError> {
    let report = serve(&options).map_err(|err| {
        let code = match &err {
            ServeError::Apply { source, .. } => match source {
                CensusError::Render { .. } => EXIT_RENDER,
                CensusError::Install { .. } => EXIT_INSTALL,
                CensusError::Probe { .. } => 1,
            },
            _ => 1,
        };
        CliError {
            code,
            message: err.to_string(),
        }
    })?;
    print!("{}", report.render());
    Ok(())
}

/// Resolves the synthetic-population flags into a generator. `--profile`
/// defaults to `baseline`; `--mix` overrides ride on the profile's rates.
fn build_generator(args: &CensusArgs, apps: usize) -> Result<CorpusGenerator, CliError> {
    let name = args.profile.as_deref().unwrap_or("baseline");
    let mut profile = CorpusProfile::named(name)
        .ok_or_else(|| {
            CliError::other(format!(
                "unknown profile `{name}`; expected one of: {}",
                CorpusProfile::NAMES.join(", ")
            ))
        })?
        .with_apps(apps)
        .with_seed(args.seed);
    if let Some(mix_spec) = &args.mix {
        let mut mix = profile.mix().clone();
        mix.apply_overrides(mix_spec)
            .map_err(|e| CliError::other(format!("invalid --mix: {e}")))?;
        profile = profile.with_mix(mix);
    }
    Ok(CorpusGenerator::new(profile))
}

fn load_release(args: &ChartArgs, name: &str) -> Result<Release, CliError> {
    let mut release = Release::new(name, "default");
    if let Some(values_path) = &args.values {
        let src = std::fs::read_to_string(values_path)
            .map_err(|e| CliError::other(format!("{}: {e}", values_path.display())))?;
        release = release
            .with_values_yaml(&src)
            .map_err(|e| CliError::render(e.to_string()))?;
    }
    Ok(release)
}

fn run_census_command(args: CensusArgs) -> Result<(), CliError> {
    if args.synthetic.is_some() && args.org.is_some() {
        return Err(CliError::other(
            "--org selects a built-in dataset and cannot be combined with --synthetic",
        ));
    }
    if args.synthetic.is_none() && (args.profile.is_some() || args.mix.is_some()) {
        return Err(CliError::other(
            "--profile/--mix configure the synthetic generator; pass --synthetic <n>",
        ));
    }
    if args.shards != 1 && args.synthetic.is_none() {
        return Err(CliError::other(
            "--shards partitions the streamed synthetic census; pass --synthetic <n>",
        ));
    }
    let mut analyzer = if args.static_only {
        Analyzer::static_only()
    } else {
        Analyzer::hybrid()
    };
    if args.rule_pack.is_some() || !args.without_rules.is_empty() {
        analyzer.registry = assemble_registry(args.rule_pack.as_deref(), &args.without_rules)?;
    }
    let mut builder = CensusPipeline::builder()
        .seed(args.seed)
        .threads(args.threads)
        .shards(args.shards)
        .analyzer(analyzer);
    if args.progress {
        builder = builder.observer(|p| eprintln!("[{}/{}] {}", p.completed, p.total, p.app));
    }
    let timings = args.timings.then(Arc::<PhaseTimings>::default);
    if let Some(t) = &timings {
        builder = builder.timings(Arc::clone(t));
    }
    let pipeline = builder.build();
    match args.synthetic {
        Some(apps) => {
            // Streamed synthetic populations stay in the interned compact
            // form end to end: the table renders from the flat census
            // without ever materializing the owned one.
            let census = pipeline.run_generated_compact(&build_generator(&args, apps)?)?;
            print!(
                "{}",
                census_table_from(
                    &census.table2(),
                    census.total_misconfigurations(),
                    census.apps.len()
                )
            );
        }
        None => {
            let specs: Vec<_> = match args.org {
                Some(org) => corpus().into_iter().filter(|a| a.org == org).collect(),
                None => corpus(),
            };
            let census = pipeline.run(&specs)?;
            print!("{}", census_table(&census));
        }
    }
    // Timings go to stderr so the census table on stdout stays
    // byte-identical with and without the flag.
    if let Some(t) = &timings {
        let report = t.snapshot();
        eprintln!(
            "timings: build {:.3?}  render {:.3?}  install {:.3?}  probe {:.3?}  analyze {:.3?}  (phase total {:.3?})",
            report.build,
            report.render,
            report.install,
            report.probe,
            report.analyze,
            report.total()
        );
    }
    Ok(())
}

/// `ij corpus --describe`: print a population summary without running any
/// analysis — the built-in Table-2 corpus by default, or a synthetic
/// population when `--synthetic` (and friends) are given.
fn run_corpus_command(args: CensusArgs) -> Result<(), CliError> {
    if !args.describe {
        return Err(CliError::usage());
    }
    // The parser is shared with `census`; flags that only make sense when
    // analyzing must not be silently ignored here.
    if args.org.is_some()
        || args.threads != 1
        || args.shards != 1
        || args.static_only
        || args.progress
        || args.timings
    {
        return Err(CliError::usage());
    }
    if args.rule_pack.is_some() || !args.without_rules.is_empty() {
        return Err(CliError::usage());
    }
    let summary = match args.synthetic {
        Some(apps) => build_generator(&args, apps)?.describe(),
        None => {
            if args.profile.is_some() || args.mix.is_some() || args.seed_set {
                return Err(CliError::other(
                    "--profile/--mix/--seed configure the synthetic generator; \
                     pass --synthetic <n>",
                ));
            }
            describe_builtin()
        }
    };
    print!("{}", summary.render());
    Ok(())
}

/// Renders the census as the Table-2 style breakdown.
fn census_table(census: &Census) -> String {
    census_table_from(
        &census.table2(),
        census.total_misconfigurations(),
        census.apps.len(),
    )
}

/// The Table-2 renderer over pre-aggregated rows — shared by the owned and
/// the compact (interned) census paths, which therefore print
/// byte-identically by construction.
fn census_table_from(
    rows: &[ij_core::DatasetRow],
    misconfigurations: usize,
    apps: usize,
) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<14} {:>9}", "Dataset", "Affected"));
    for id in MisconfigId::ALL {
        out.push_str(&format!(" {:>4}", id.as_str()));
    }
    out.push('\n');
    let (mut affected, mut total) = (0usize, 0usize);
    let mut totals = [0usize; MisconfigId::ALL.len()];
    for row in rows {
        out.push_str(&format!(
            "{:<14} {:>5}/{:<3}",
            row.dataset, row.affected, row.total_apps
        ));
        for (i, id) in MisconfigId::ALL.iter().enumerate() {
            out.push_str(&format!(" {:>4}", row.count(*id)));
            totals[i] += row.count(*id);
        }
        out.push('\n');
        affected += row.affected;
        total += row.total_apps;
    }
    out.push_str(&format!("{:<14} {:>5}/{:<3}", "Total", affected, total));
    for t in totals {
        out.push_str(&format!(" {:>4}", t));
    }
    out.push_str(&format!(
        "\n{misconfigurations} misconfiguration(s) across {apps} application(s)\n"
    ));
    out
}

fn run_chart_command(args: ChartArgs) -> Result<(), CliError> {
    let chart =
        Chart::from_dir(Path::new(&args.chart_dir)).map_err(|e| CliError::other(e.to_string()))?;
    let release = load_release(&args, &chart.name.clone())?;
    let rendered = chart
        .render(&release)
        .map_err(|e| CliError::render(format!("chart {} failed to render: {e}", chart.name)))?;

    match args.command.as_str() {
        "render" => {
            for obj in &rendered.objects {
                println!("---");
                print!("{}", obj.to_manifest());
            }
            Ok(())
        }
        "analyze" | "disclose" => {
            let mut cluster = Cluster::new(ClusterConfig::default());
            let baseline = HostBaseline::capture(&cluster);
            cluster.install(&rendered).map_err(|e| CliError {
                code: EXIT_INSTALL,
                message: format!("chart {} failed to install: {e}", chart.name),
            })?;
            let runtime = RuntimeAnalyzer::default().analyze(&mut cluster, &baseline);
            let analyzer = if args.static_only {
                Analyzer::static_only()
            } else {
                Analyzer::hybrid()
            };
            let findings = analyzer.analyze_app(
                &chart.name,
                &rendered.objects,
                &cluster,
                Some(&runtime),
                chart_defines_network_policies(&chart),
            );

            if args.command == "disclose" {
                let census = Census {
                    apps: vec![AppReport {
                        app: chart.name.clone(),
                        dataset: chart.name.clone(),
                        version: chart.version.clone(),
                        findings: findings.clone(),
                    }],
                };
                print!("{}", disclosure_report(&census, &chart.name));
            } else {
                println!(
                    "chart `{}` {} — {} finding(s)",
                    chart.name,
                    chart.version,
                    findings.len()
                );
                for f in &findings {
                    println!(
                        "\n[{}] {:?} — {}",
                        f.id,
                        f.id.severity(),
                        f.id.description()
                    );
                    println!("  object: {}", f.object);
                    println!("  detail: {}", f.detail);
                    println!("  fix:    {}", f.id.mitigation());
                }
            }

            if let Some(dot_path) = &args.dot {
                let dot = connectivity_dot(&cluster);
                std::fs::write(dot_path, dot)
                    .map_err(|e| CliError::other(format!("{}: {e}", dot_path.display())))?;
                eprintln!("wrote connectivity graph to {}", dot_path.display());
            }
            Ok(())
        }
        other => Err(CliError::other(format!("unknown command `{other}`"))),
    }
}

fn run() -> Result<(), CliError> {
    let mut argv = std::env::args();
    let _ = argv.next(); // program name
    let command = argv.next().ok_or_else(CliError::usage)?;
    match command.as_str() {
        "census" => run_census_command(parse_census_args(argv, false)?),
        "corpus" => run_corpus_command(parse_census_args(argv, true)?),
        "rules" => run_rules_command(parse_rules_args(argv)?),
        "serve" => run_serve_command(parse_serve_args(argv)?),
        "conform" => run_conform_command(parse_conform_args(argv)?),
        "help" | "--help" | "-h" => {
            print!("{HELP}");
            Ok(())
        }
        "analyze" | "render" | "disclose" => {
            let args = parse_chart_args(command, argv).ok_or_else(CliError::usage)?;
            run_chart_command(args)
        }
        other => Err(CliError::other(format!("unknown command `{other}`"))),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            if err.code == EXIT_USAGE && err.message.is_empty() {
                return usage();
            }
            eprintln!("error: {}", err.message);
            ExitCode::from(err.code)
        }
    }
}
