//! The corpus runner trusts its generated charts to render; hand-built
//! charts may not. These tests pin down the failure behaviour: `ij-chart`
//! returns typed errors, and `analyze_one` surfaces them as a panic naming
//! the chart (the `unwrap_or_else` paths in `runner.rs`).

use ij_chart::{Chart, Error, Release};
use ij_datasets::{analyze_one, build_app, AppSpec, BuiltApp, CorpusOptions, Org, Plan};

/// A template that renders to structurally invalid YAML (a sequence item
/// where a mapping value is required).
const BAD_YAML_TEMPLATE: &str = "\
apiVersion: v1
kind: Service
metadata:
  name: broken
spec:
  - this is a sequence
  where: a mapping was required
";

fn malformed_chart() -> Chart {
    Chart::builder("malformed")
        .template("broken.yaml", BAD_YAML_TEMPLATE)
        .build()
}

#[test]
fn render_reports_invalid_yaml_with_template_name() {
    let err = malformed_chart()
        .render(&Release::new("x", "default"))
        .expect_err("malformed chart must not render");
    match err {
        Error::RenderedYaml { template, .. } => assert_eq!(template, "broken.yaml"),
        other => panic!("expected RenderedYaml, got {other:?}"),
    }
}

#[test]
fn render_reports_template_syntax_errors() {
    let err = Chart::builder("syntax")
        .template("bad.yaml", "value: {{ .Values.x") // unclosed action
        .build()
        .render(&Release::new("x", "default"))
        .expect_err("unclosed template action must not render");
    match err {
        Error::Template { template, .. } => assert_eq!(template, "bad.yaml"),
        other => panic!("expected Template, got {other:?}"),
    }
}

#[test]
#[should_panic(expected = "chart malformed-app failed to render")]
fn analyze_one_panics_on_malformed_chart() {
    // Reuse a real built app for the spec/behaviours, then swap in a chart
    // that cannot render — the runner must fail loudly, naming the chart.
    let spec = AppSpec::new("malformed-app", Org::Cncf, "0.0.1", Plan::clean());
    let built = BuiltApp {
        chart: malformed_chart(),
        ..build_app(&spec)
    };
    let _ = analyze_one(&built, &CorpusOptions::default());
}
