//! # ij-datasets — the calibrated evaluation corpus
//!
//! The paper evaluates open-source Helm charts from six organizations.
//! Those exact charts (and their container images) are not reproducible
//! offline, so this crate generates a **synthetic corpus with the same
//! shape**: the same six datasets with the same per-dataset application
//! counts, each chart carrying an injected misconfiguration plan such that
//! the per-class counts sum exactly to Table 2 (634 findings, 259 affected
//! applications; the table's dataset sizes sum to 290 even though the text
//! says 287 — this corpus follows the table), the named applications of
//! Figures 3a/3b carry their published profiles, and the policy postures of
//! Figure 4b hold per dataset.
//!
//! Unlike the real study, the corpus has **ground truth**: every chart knows
//! which findings it should produce, so analyzer precision and recall are
//! testable (the paper notes the lack of ground truth as a limitation,
//! §6.3).
//!
//! The crate also ships the §2.1 proof-of-concept applications (Concourse
//! and Thanos) and the representative per-class charts used for the Table 3
//! tool comparison.
//!
//! ## The census pipeline
//!
//! [`CensusPipeline`] is the front door to the evaluation: a builder
//! configures the seed, cluster size, probe, analyzer (including per-rule
//! registry ablations), worker-thread count, and an optional progress
//! observer; `run` executes baseline → install → double-pass probe → rule
//! evaluation → cluster-wide pass and returns a typed [`CensusError`]
//! instead of panicking when a chart fails to render or install. The
//! parallel path is deterministic: a `threads(n)` census is byte-identical
//! to the sequential run for every `n`.
//!
//! ```
//! use ij_datasets::{corpus, CensusPipeline, Org};
//!
//! let eea: Vec<_> = corpus().into_iter().filter(|a| a.org == Org::Eea).collect();
//! let census = CensusPipeline::builder()
//!     .seed(42)
//!     .threads(2)
//!     .build()
//!     .run(&eea)
//!     .expect("the synthetic corpus renders and installs");
//! assert_eq!(census.apps.len(), eea.len());
//! ```
//!
//! ### Migration notes
//!
//! The original free functions survive as thin sequential wrappers over the
//! pipeline, now returning `Result<_, CensusError>` instead of panicking:
//!
//! * [`analyze_one`] ≡ `CensusPipeline::builder().options(opts).build().analyze_one(built)`
//! * [`run_census`] ≡ `…build().run(specs)`
//! * [`policy_impact`] ≡ `…build().policy_impact(specs)`
//!
//! Callers that previously relied on the panic can `.expect()` the result;
//! callers that want parallelism, progress reporting, or rule ablations
//! should move to the builder.

mod builder;
mod conform;
pub mod gen;
mod orgs;
mod pipeline;
mod poc;
mod representative;
mod runner;
mod score;
mod spec;

pub use builder::{build_app, ports, BuiltApp, INSTANCE_KEY};
pub use conform::{
    run_conformance, ChartConformance, ChartStatus, ConformanceError, ConformanceReport,
};
pub use gen::{
    apply_mutation, describe_builtin, Archetype, ChurnMutation, ChurnSession, CorpusGenerator,
    CorpusProfile, CorpusProfileBuilder, MisconfigMix, MixError, PopulationSummary, FLIP_TOKEN,
};
pub use orgs::corpus;
pub use pipeline::{
    CensusError, CensusObserver, CensusPipeline, CensusPipelineBuilder, CensusProgress,
    PhaseReport, PhaseTimings,
};
pub use poc::{concourse_behaviors, concourse_chart, thanos_behaviors, thanos_chart};
pub use representative::representative_charts;
pub use runner::{
    analyze_one, policy_impact, run_census, run_generated_census, AppAnalysis, CorpusOptions,
    PolicyImpact,
};
pub use score::{score_app, score_corpus, ClassScore, ScoreReport};
pub use spec::{AppSpec, NetpolSpec, Org, Plan, UseCase};
