//! Chart and template errors.

use std::fmt;

/// Result alias for chart operations.
pub type Result<T> = std::result::Result<T, Error>;

/// An error raised while building or rendering a chart.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Template syntax error.
    Template {
        /// Template file name.
        template: String,
        /// Description with position information.
        message: String,
    },
    /// A rendered template failed to parse as YAML.
    RenderedYaml {
        /// Template file name.
        template: String,
        /// Underlying YAML error.
        source: ij_yaml::Error,
        /// The rendered text, kept for diagnostics.
        rendered: String,
    },
    /// A rendered document failed to decode as a Kubernetes object.
    Decode {
        /// Template file name.
        template: String,
        /// Underlying model error message.
        message: String,
    },
    /// Values file problems.
    Values(String),
    /// A `required` template function fired.
    Required(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Template { template, message } => {
                write!(f, "template `{template}`: {message}")
            }
            Error::RenderedYaml {
                template, source, ..
            } => {
                write!(f, "template `{template}` rendered invalid YAML: {source}")
            }
            Error::Decode { template, message } => {
                write!(
                    f,
                    "template `{template}` produced an invalid object: {message}"
                )
            }
            Error::Values(m) => write!(f, "invalid values: {m}"),
            Error::Required(m) => write!(f, "required value missing: {m}"),
        }
    }
}

impl std::error::Error for Error {}
