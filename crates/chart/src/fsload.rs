//! Loading charts from disk, Helm layout:
//!
//! ```text
//! mychart/
//!   Chart.yaml        # name, version, description, dependencies
//!   values.yaml       # defaults
//!   templates/*.yaml  # templates (rendered in sorted order)
//!   charts/<dep>/     # unpacked subcharts
//! ```
//!
//! Dependency conditions come from `Chart.yaml`'s `dependencies:` entries
//! (`name` + optional `condition`), matching unpacked directories under
//! `charts/`.

use crate::chart::{Chart, Dependency};
use crate::error::{Error, Result};
use std::fs;
use std::path::Path;

impl Chart {
    /// Loads a chart directory (recursively including `charts/` subcharts).
    pub fn from_dir(dir: &Path) -> Result<Chart> {
        let io = |e: std::io::Error| Error::Values(format!("{}: {e}", dir.display()));

        // Chart.yaml
        let meta_path = dir.join("Chart.yaml");
        let meta_src = fs::read_to_string(&meta_path)
            .map_err(|e| Error::Values(format!("{}: {e}", meta_path.display())))?;
        let meta = ij_yaml::parse(&meta_src).map_err(|e| Error::Values(e.to_string()))?;
        let name = meta
            .get("name")
            .and_then(ij_yaml::Value::as_str)
            .map(str::to_string)
            .or_else(|| dir.file_name().map(|n| n.to_string_lossy().into_owned()))
            .ok_or_else(|| Error::Values("chart has no name".into()))?;
        let version = meta
            .get("version")
            .map(|v| v.render_scalar())
            .unwrap_or_else(|| "0.1.0".to_string());
        let description = meta
            .get("description")
            .map(|v| v.render_scalar())
            .unwrap_or_default();

        // values.yaml (optional)
        let values_path = dir.join("values.yaml");
        let values = if values_path.exists() {
            let src = fs::read_to_string(&values_path)
                .map_err(|e| Error::Values(format!("{}: {e}", values_path.display())))?;
            ij_yaml::parse(&src).map_err(|e| Error::Values(e.to_string()))?
        } else {
            ij_yaml::Value::Map(ij_yaml::Map::new())
        };

        // templates/*.yaml, sorted for deterministic render order.
        let mut templates = Vec::new();
        let tpl_dir = dir.join("templates");
        if tpl_dir.is_dir() {
            let mut entries: Vec<_> = fs::read_dir(&tpl_dir)
                .map_err(io)?
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| {
                    p.extension()
                        .is_some_and(|ext| ext == "yaml" || ext == "yml" || ext == "tpl")
                })
                .collect();
            entries.sort();
            for path in entries {
                let file_name = path
                    .file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_default();
                // `_helpers.tpl`-style partial files are loaded too: the
                // renderer skips them for output but their `define` blocks
                // are visible to every template of the chart.
                let src = fs::read_to_string(&path)
                    .map_err(|e| Error::Values(format!("{}: {e}", path.display())))?;
                templates.push((file_name, crate::TemplateSource::Text(src)));
            }
        }

        // charts/<dep>/ subcharts, with conditions from Chart.yaml.
        let mut dependencies = Vec::new();
        let charts_dir = dir.join("charts");
        if charts_dir.is_dir() {
            let declared: Vec<(String, Option<String>)> = meta
                .get("dependencies")
                .and_then(ij_yaml::Value::as_seq)
                .map(|deps| {
                    deps.iter()
                        .filter_map(|d| {
                            let name = d.get("name")?.as_str()?.to_string();
                            let condition = d
                                .get("condition")
                                .and_then(ij_yaml::Value::as_str)
                                .map(str::to_string);
                            Some((name, condition))
                        })
                        .collect()
                })
                .unwrap_or_default();
            let mut sub_dirs: Vec<_> = fs::read_dir(&charts_dir)
                .map_err(io)?
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.is_dir())
                .collect();
            sub_dirs.sort();
            for sub in sub_dirs {
                let chart = Chart::from_dir(&sub)?;
                let condition = declared
                    .iter()
                    .find(|(n, _)| *n == chart.name)
                    .and_then(|(_, c)| c.clone());
                dependencies.push(Dependency { chart, condition });
            }
        }

        Ok(Chart {
            name,
            version,
            description,
            values,
            templates,
            dependencies,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chart::Release;
    use std::path::PathBuf;

    fn write(path: &Path, content: &str) {
        fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        fs::write(path, content).expect("write");
    }

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ij-chart-test-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("mkdir scratch");
        dir
    }

    #[test]
    fn loads_chart_with_subchart_and_condition() {
        let dir = scratch("load");
        write(
            &dir.join("Chart.yaml"),
            "\
name: parent
version: 1.2.3
description: test chart
dependencies:
  - name: child
    condition: child.enabled
",
        );
        write(
            &dir.join("values.yaml"),
            "replicas: 2\nchild:\n  enabled: false\n",
        );
        write(
            &dir.join("templates/00-deploy.yaml"),
            "\
apiVersion: apps/v1
kind: Deployment
metadata:
  name: {{ .Release.Name }}-app
spec:
  replicas: {{ .Values.replicas }}
  selector:
    matchLabels:
      app: parent
  template:
    metadata:
      labels:
        app: parent
    spec:
      containers:
        - name: app
          image: img/app
",
        );
        write(
            &dir.join("templates/_helpers.tpl"),
            "{{ define \"parent.labels\" }}app: parent{{ end }}",
        );
        write(
            &dir.join("charts/child/Chart.yaml"),
            "name: child\nversion: 0.1.0\n",
        );
        write(&dir.join("charts/child/values.yaml"), "port: 9000\n");
        write(
            &dir.join("charts/child/templates/svc.yaml"),
            "\
apiVersion: v1
kind: Service
metadata:
  name: {{ .Release.Name }}-child
spec:
  selector:
    app: child
  ports:
    - port: {{ .Values.port }}
",
        );

        let chart = Chart::from_dir(&dir).expect("loads");
        assert_eq!(chart.name, "parent");
        assert_eq!(chart.version, "1.2.3");
        assert_eq!(
            chart.templates.len(),
            2,
            "_helpers.tpl loaded for its defines"
        );
        assert_eq!(chart.dependencies.len(), 1);
        assert_eq!(
            chart.dependencies[0].condition.as_deref(),
            Some("child.enabled")
        );

        // Condition off by default.
        let rendered = chart
            .render(&Release::new("r", "default"))
            .expect("renders");
        assert_eq!(rendered.objects.len(), 1);

        // Enable the child via overrides.
        let rel = Release::new("r", "default")
            .with_values_yaml("child:\n  enabled: true\n")
            .unwrap();
        let rendered = chart.render(&rel).expect("renders");
        assert_eq!(rendered.objects.len(), 2);
        let svc = rendered.of_kind("Service").next().expect("child service");
        assert_eq!(svc.meta().name, "r-child");

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_chart_yaml_is_an_error() {
        let dir = scratch("missing");
        assert!(Chart::from_dir(&dir).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn chart_without_values_or_templates_loads_empty() {
        let dir = scratch("empty");
        write(&dir.join("Chart.yaml"), "name: bare\nversion: 0.0.1\n");
        let chart = Chart::from_dir(&dir).expect("loads");
        assert_eq!(chart.name, "bare");
        assert!(chart.templates.is_empty());
        let rendered = chart
            .render(&Release::new("r", "default"))
            .expect("renders");
        assert!(rendered.objects.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }
}
