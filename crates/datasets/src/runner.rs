//! The evaluation harness: per-application fresh-cluster analysis (§4.2),
//! the cluster-wide pass, and the §4.3.2 policy-impact experiment.
//!
//! The free functions here ([`analyze_one`], [`run_census`],
//! [`policy_impact`]) are thin wrappers over [`CensusPipeline`], preserved
//! for callers of the original API. They run sequentially with no observer;
//! use the pipeline builder directly for parallel execution, progress
//! hooks, or rule ablations.

use crate::builder::BuiltApp;
use crate::pipeline::{CensusError, CensusPipeline};
use crate::spec::AppSpec;
use ij_core::{Analyzer, Census, Finding, StaticModel};
use ij_probe::ProbeConfig;

/// Options for a corpus run.
#[derive(Debug, Clone)]
pub struct CorpusOptions {
    /// Base seed; each application derives its own from this and its name.
    pub seed: u64,
    /// Probe configuration (noise injection, filters, double run).
    pub probe: ProbeConfig,
    /// Analyzer configuration (hybrid / static-only / runtime-only).
    pub analyzer: Analyzer,
    /// Worker nodes per ephemeral cluster.
    pub nodes: usize,
}

impl Default for CorpusOptions {
    fn default() -> Self {
        CorpusOptions {
            seed: 42,
            probe: ProbeConfig::default(),
            analyzer: Analyzer::hybrid(),
            nodes: 3,
        }
    }
}

impl CorpusOptions {
    pub(crate) fn app_seed(&self, name: &str) -> u64 {
        // FNV-1a over the name, mixed with the base seed.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h ^ self.seed
    }

    fn pipeline(&self) -> CensusPipeline {
        CensusPipeline::builder().options(self.clone()).build()
    }
}

/// The outcome of analyzing one application.
#[derive(Debug, Clone)]
pub struct AppAnalysis {
    /// Application name.
    pub app: String,
    /// Per-application findings (no M4\*).
    pub findings: Vec<Finding>,
    /// Static model, kept for the cluster-wide pass.
    pub statics: StaticModel,
}

/// Installs one built application into a fresh cluster and analyzes it,
/// following the paper's methodology: baseline → install → double-pass
/// runtime analysis → rule evaluation.
///
/// Thin wrapper over [`CensusPipeline::analyze_one`].
pub fn analyze_one(built: &BuiltApp, opts: &CorpusOptions) -> Result<AppAnalysis, CensusError> {
    opts.pipeline().analyze_one(built)
}

/// Runs the full evaluation over a set of specifications: every application
/// in its own cluster, then the cluster-wide M4\* pass, producing the census
/// behind Table 2 and Figures 3–4.
///
/// Thin wrapper over [`CensusPipeline::run`] (sequential; use
/// `CensusPipeline::builder().threads(n)` to parallelize).
pub fn run_census(specs: &[AppSpec], opts: &CorpusOptions) -> Result<Census, CensusError> {
    opts.pipeline().run(specs)
}

/// Streams a generated population into a flat-memory
/// [`CompactCensus`](ij_core::CompactCensus): interned findings, no
/// materialized spec or report `String`s. The census resolves lazily at
/// render time and is byte-identical to
/// [`CensusPipeline::run_generated`] across every `(shards, threads)`
/// combination.
///
/// Thin wrapper over [`CensusPipeline::run_generated_compact`] (sequential,
/// single shard; use `CensusPipeline::builder().threads(n).shards(k)` to
/// scale).
pub fn run_generated_census(
    generator: &crate::gen::CorpusGenerator,
    opts: &CorpusOptions,
) -> Result<ij_core::CompactCensus, CensusError> {
    opts.pipeline().run_generated_compact(generator)
}

/// One dataset row of the §4.3.2 policy-impact study (Figure 4b).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PolicyImpact {
    /// Dataset name.
    pub dataset: String,
    /// Charts that define NetworkPolicies (force-enabled for the study).
    pub enabled: usize,
    /// Of those, charts where misconfigured endpoints stayed reachable.
    pub affected: usize,
    /// Pods with at least one reachable misconfigured port.
    pub reachable_pods: usize,
    /// Of those, pods whose reachable misconfigured port is dynamic.
    pub reachable_dynamic_pods: usize,
    /// Services that still forward to a misconfigured (undeclared) port.
    pub reachable_services: usize,
}

/// Force-enables each policy-defining chart's policies and measures which
/// misconfigured endpoints remain reachable from an unrelated attacker pod.
///
/// Thin wrapper over [`CensusPipeline::policy_impact`].
pub fn policy_impact(
    specs: &[AppSpec],
    opts: &CorpusOptions,
) -> Result<Vec<PolicyImpact>, CensusError> {
    opts.pipeline().policy_impact(specs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_app;
    use crate::spec::{NetpolSpec, Org, Plan};
    use ij_core::{sort_canonical, MisconfigId};

    fn analyze_plan(plan: Plan) -> Vec<Finding> {
        let app_spec = AppSpec::new("probe-app", Org::Cncf, "1.0.0", plan);
        let built = build_app(&app_spec);
        analyze_one(&built, &CorpusOptions::default())
            .expect("corpus app analyzes")
            .findings
    }

    fn count(findings: &[Finding], id: MisconfigId) -> usize {
        findings.iter().filter(|f| f.id == id).count()
    }

    #[test]
    fn injected_plan_detected_exactly() {
        let plan = Plan {
            m1: 3,
            m2: 2,
            m3: 2,
            m4a: 1,
            m4b: 1,
            m4c: 1,
            m5a: 1,
            m5b: 2,
            m5c: 1,
            m5d: 1,
            m7: 2,
            netpol: NetpolSpec::Missing,
            ..Default::default()
        };
        let findings = analyze_plan(plan.clone());
        for id in MisconfigId::ALL {
            assert_eq!(
                count(&findings, id),
                plan.expected_of(id),
                "{id}: findings {findings:#?}"
            );
        }
        assert_eq!(findings.len(), plan.expected_local_findings());
    }

    #[test]
    fn clean_plan_yields_nothing() {
        let findings = analyze_plan(Plan::clean());
        assert!(findings.is_empty(), "unexpected: {findings:#?}");
    }

    #[test]
    fn disabled_policy_yields_single_m6() {
        let findings = analyze_plan(Plan {
            netpol: NetpolSpec::DefinedDisabled { loose: false },
            ..Default::default()
        });
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].id, MisconfigId::M6);
        assert!(findings[0].detail.contains("not enabled"));
    }

    #[test]
    fn census_over_small_slice() {
        let specs = vec![
            AppSpec::new(
                "alpha",
                Org::Cncf,
                "1.0.0",
                Plan {
                    m1: 1,
                    m4star_tokens: vec!["shared"],
                    ..Default::default()
                },
            ),
            AppSpec::new(
                "beta",
                Org::Cncf,
                "1.0.0",
                Plan {
                    m4star_tokens: vec!["shared"],
                    netpol: NetpolSpec::Enabled { loose: false },
                    ..Default::default()
                },
            ),
        ];
        let census = run_census(&specs, &CorpusOptions::default()).expect("corpus slice runs");
        assert_eq!(census.apps.len(), 2);
        // alpha: M1 + M6 + the global M4* (attributed to the first app).
        let alpha = &census.apps[0];
        assert_eq!(alpha.count_of(MisconfigId::M1), 1);
        assert_eq!(alpha.count_of(MisconfigId::M6), 1);
        assert_eq!(alpha.count_of(MisconfigId::M4Star), 1);
        // beta: policies enabled, clean except for its role as partner.
        assert_eq!(census.apps[1].total(), 0);
        assert_eq!(census.total_misconfigurations(), 3);
    }

    #[test]
    fn census_reports_stay_canonically_ordered_after_global_attribution() {
        // The M4* findings are attributed after the per-app pass; the
        // report must still come out in canonical (id, object, port) order,
        // i.e. with M4* *between* M4C and M5A, not appended at the end.
        let specs = vec![
            AppSpec::new(
                "order-alpha",
                Org::Cncf,
                "1.0.0",
                Plan {
                    m1: 1,
                    m5d: 1,
                    m7: 1,
                    m4star_tokens: vec!["order-shared"],
                    netpol: NetpolSpec::Missing,
                    ..Default::default()
                },
            ),
            AppSpec::new(
                "order-beta",
                Org::Cncf,
                "1.0.0",
                Plan {
                    m4star_tokens: vec!["order-shared"],
                    netpol: NetpolSpec::Enabled { loose: false },
                    ..Default::default()
                },
            ),
        ];
        let census = run_census(&specs, &CorpusOptions::default()).expect("corpus slice runs");
        let alpha = &census.apps[0];
        let mut canonical = alpha.findings.clone();
        sort_canonical(&mut canonical);
        assert_eq!(alpha.findings, canonical, "report order must be canonical");
        let pos = |id: MisconfigId| {
            alpha
                .findings
                .iter()
                .position(|f| f.id == id)
                .unwrap_or_else(|| panic!("{id} missing from {:#?}", alpha.findings))
        };
        assert!(pos(MisconfigId::M4Star) < pos(MisconfigId::M5D));
        assert!(pos(MisconfigId::M5D) < pos(MisconfigId::M7));
    }

    #[test]
    fn policy_impact_loose_vs_tight() {
        let specs = vec![
            AppSpec::new(
                "tight-app",
                Org::Eea,
                "1.0.0",
                Plan {
                    m1: 2,
                    netpol: NetpolSpec::Enabled { loose: false },
                    ..Default::default()
                },
            ),
            AppSpec::new(
                "loose-app",
                Org::Eea,
                "1.0.0",
                Plan {
                    m1: 2,
                    server_replicas: 2,
                    netpol: NetpolSpec::Enabled { loose: true },
                    ..Default::default()
                },
            ),
        ];
        let rows = policy_impact(&specs, &CorpusOptions::default()).expect("policy study runs");
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert_eq!(row.enabled, 2);
        assert_eq!(row.affected, 1, "only the loose chart stays reachable");
        assert_eq!(row.reachable_pods, 2, "both replicas of the loose server");
        assert_eq!(row.reachable_services, 0);
    }

    /// Reference FNV-1a (64-bit), independent of the implementation inside
    /// `CorpusOptions::app_seed`, so a silent constant change fails here.
    fn fnv1a(name: &str) -> u64 {
        name.bytes().fold(0xcbf29ce484222325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x100000001b3)
        })
    }

    #[test]
    fn app_seed_is_fnv1a_mixed_with_base_seed() {
        let opts = CorpusOptions {
            seed: 0xABCD,
            ..Default::default()
        };
        for name in ["redis", "kube-prometheus-stack", "a", ""] {
            assert_eq!(opts.app_seed(name), fnv1a(name) ^ 0xABCD, "name {name:?}");
        }
    }

    #[test]
    fn app_seed_is_stable_across_instances() {
        let a = CorpusOptions::default();
        let b = CorpusOptions::default();
        for name in ["redis", "harbor", "metallb"] {
            assert_eq!(a.app_seed(name), a.app_seed(name));
            assert_eq!(a.app_seed(name), b.app_seed(name));
        }
    }

    #[test]
    fn distinct_apps_get_distinct_seeds() {
        use std::collections::BTreeSet;
        let opts = CorpusOptions::default();
        let names: BTreeSet<String> = crate::corpus().into_iter().map(|a| a.name).collect();
        let seeds: BTreeSet<u64> = names.iter().map(|n| opts.app_seed(n)).collect();
        assert_eq!(
            seeds.len(),
            names.len(),
            "FNV-1a collision among corpus app names"
        );
    }

    #[test]
    fn base_seed_shifts_every_app_seed() {
        let a = CorpusOptions {
            seed: 1,
            ..Default::default()
        };
        let b = CorpusOptions {
            seed: 2,
            ..Default::default()
        };
        for app in crate::corpus() {
            assert_ne!(a.app_seed(&app.name), b.app_seed(&app.name), "{}", app.name);
        }
    }
}
