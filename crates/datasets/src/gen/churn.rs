//! Deterministic churn workloads: the mutation traffic the continuous-audit
//! serve mode replays against a tenant cluster.
//!
//! A [`ChurnSession`] draws applications from the same scenario matrix as
//! the synthetic corpus ([`CorpusGenerator`]) and emits a seeded stream of
//! [`ChurnMutation`]s — installs, uninstalls, label flips (helm-upgrade
//! style reinstalls with a toggled `part-of` marker), policy additions and
//! scale events. The stream is a pure function of the profile (name, seed,
//! app horizon): two sessions over the same profile produce byte-identical
//! mutations, which is what makes serve-mode runs and the `audit_churn`
//! bench reproducible.
//!
//! Mutations carry everything needed to apply them, so
//! [`apply_mutation`] is a stateless function of `(cluster, mutation)` —
//! the property tests replay one recorded stream against two clusters and
//! demand identical findings.

use crate::builder::{build_app, INSTANCE_KEY};
use crate::gen::CorpusGenerator;
use crate::pipeline::CensusError;
use crate::spec::AppSpec;
use ij_chart::Release;
use ij_cluster::{Cluster, RELEASE_ANNOTATION};
use ij_model::{LabelSelector, Labels, NetworkPolicy, Object, ObjectMeta};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// The `part-of` marker a [`ChurnMutation::LabelFlip`] toggles on an
/// application, moving it in and out of cluster-wide `M4*` collision
/// groups.
pub const FLIP_TOKEN: &str = "churn-hotfix";

/// Keep at least this many applications installed before the session rolls
/// destructive mutations.
const MIN_INSTALLED: usize = 3;

/// One step of the churn workload. Carries everything needed to apply it,
/// so application is stateless and replayable.
#[derive(Debug, Clone, PartialEq)]
pub enum ChurnMutation {
    /// Install a fresh application from the scenario matrix.
    Install {
        /// The generated specification to build and install.
        spec: AppSpec,
    },
    /// Uninstall a currently installed application.
    Uninstall {
        /// Release name.
        app: String,
    },
    /// Toggle the [`FLIP_TOKEN`] marker and reinstall (helm-upgrade
    /// semantics: the release's objects are replaced wholesale).
    LabelFlip {
        /// Release name.
        app: String,
        /// The updated specification after the flip.
        spec: AppSpec,
    },
    /// Apply a deny-all-ingress NetworkPolicy selecting the application's
    /// instance label, stamped with its release annotation.
    PolicyAdd {
        /// Release name.
        app: String,
        /// Qualified-unique policy object name.
        policy: String,
    },
    /// Scale the application's main server workload.
    Scale {
        /// Release name.
        app: String,
        /// Qualified workload name (`namespace/name`).
        workload: String,
        /// New replica count (0 is a deliberate scale-to-zero).
        replicas: u32,
    },
}

impl ChurnMutation {
    /// Short mutation class label for stats and logs.
    pub fn kind(&self) -> &'static str {
        match self {
            ChurnMutation::Install { .. } => "install",
            ChurnMutation::Uninstall { .. } => "uninstall",
            ChurnMutation::LabelFlip { .. } => "label-flip",
            ChurnMutation::PolicyAdd { .. } => "policy-add",
            ChurnMutation::Scale { .. } => "scale",
        }
    }

    /// The release the mutation targets.
    pub fn app(&self) -> &str {
        match self {
            ChurnMutation::Install { spec } | ChurnMutation::LabelFlip { spec, .. } => &spec.name,
            ChurnMutation::Uninstall { app }
            | ChurnMutation::PolicyAdd { app, .. }
            | ChurnMutation::Scale { app, .. } => app,
        }
    }
}

/// A seeded mutation stream over a corpus profile. The profile's app count
/// is the install horizon — the maximum number of distinct applications the
/// session can have installed simultaneously; sizing it at or above the
/// planned mutation count guarantees installs never starve.
#[derive(Debug, Clone)]
pub struct ChurnSession {
    generator: CorpusGenerator,
    rng: StdRng,
    installed: BTreeMap<String, AppSpec>,
    next_index: usize,
    policy_seq: usize,
}

impl ChurnSession {
    /// Wraps a profile (see [`CorpusProfile`](crate::CorpusProfile)); the
    /// mutation stream derives entirely from its name, seed and app count.
    pub fn new(generator: CorpusGenerator) -> Self {
        // Decorrelate the mutation rolls from per-app generation (which
        // uses the same base seed) via one splitmix64 round.
        let mut x = generator.profile().seed() ^ 0x6368_7572_6e5f_6d75; // "churn_mu"
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        ChurnSession {
            generator,
            rng: StdRng::seed_from_u64(x ^ (x >> 31)),
            installed: BTreeMap::new(),
            next_index: 0,
            policy_seq: 0,
        }
    }

    /// Applications currently installed, by release name.
    pub fn installed(&self) -> impl Iterator<Item = &str> {
        self.installed.keys().map(String::as_str)
    }

    /// Marks the first `n` generator specs as installed and returns the
    /// corresponding [`ChurnMutation::Install`]s for the caller to apply —
    /// how the `audit_churn` bench starts from a populated steady state.
    pub fn preinstall(&mut self, n: usize) -> Vec<ChurnMutation> {
        (0..n)
            .filter_map(|_| self.next_install())
            .map(|spec| ChurnMutation::Install { spec })
            .collect()
    }

    /// The next not-yet-installed spec from the horizon, in index order
    /// (wrapping over slots freed by uninstalls).
    fn next_install(&mut self) -> Option<AppSpec> {
        let len = self.generator.len();
        for _ in 0..len {
            let idx = self.next_index % len;
            self.next_index += 1;
            let spec = self.generator.spec(idx);
            if !self.installed.contains_key(&spec.name) {
                self.installed.insert(spec.name.clone(), spec.clone());
                return Some(spec);
            }
        }
        None
    }

    /// A currently installed release, drawn uniformly.
    fn pick_app(&mut self) -> Option<String> {
        if self.installed.is_empty() {
            return None;
        }
        let idx = self.rng.gen_range(0..self.installed.len());
        self.installed.keys().nth(idx).cloned()
    }

    /// Draws the next mutation and updates the session's bookkeeping. The
    /// mix: ~30% installs (forced while fewer than three apps are
    /// installed), ~20% uninstalls, ~20% label flips, ~15% policy
    /// additions, ~15% scale events.
    pub fn next_mutation(&mut self) -> ChurnMutation {
        let roll: u32 = self.rng.gen_range(0u32..100);
        if self.installed.len() < MIN_INSTALLED || roll < 30 {
            if let Some(spec) = self.next_install() {
                return ChurnMutation::Install { spec };
            }
        }
        let app = self
            .pick_app()
            .expect("churn session always keeps apps installed");
        match roll {
            0..=49 => {
                self.installed.remove(&app);
                ChurnMutation::Uninstall { app }
            }
            50..=69 => {
                let mut spec = self.installed.get(&app).cloned().expect("picked installed");
                match spec
                    .plan
                    .m4star_tokens
                    .iter()
                    .position(|t| *t == FLIP_TOKEN)
                {
                    Some(pos) => {
                        spec.plan.m4star_tokens.remove(pos);
                    }
                    None => spec.plan.m4star_tokens.push(FLIP_TOKEN),
                }
                self.installed.insert(app.clone(), spec.clone());
                ChurnMutation::LabelFlip { app, spec }
            }
            70..=84 => {
                self.policy_seq += 1;
                let policy = format!("{app}-churn-deny-{}", self.policy_seq);
                ChurnMutation::PolicyAdd { app, policy }
            }
            _ => {
                let replicas = [0u32, 1, 2, 3][self.rng.gen_range(0..4usize)];
                let workload = format!("default/{app}-server");
                ChurnMutation::Scale {
                    app,
                    workload,
                    replicas,
                }
            }
        }
    }
}

/// Applies one mutation to a cluster: builds, renders and installs for
/// [`ChurnMutation::Install`]/[`ChurnMutation::LabelFlip`], and reconciles
/// after scale events. Stateless — the mutation carries everything.
pub fn apply_mutation(cluster: &mut Cluster, mutation: &ChurnMutation) -> Result<(), CensusError> {
    match mutation {
        ChurnMutation::Install { spec } => install_spec(cluster, spec),
        ChurnMutation::Uninstall { app } => {
            cluster.uninstall(app);
            Ok(())
        }
        ChurnMutation::LabelFlip { app, spec } => {
            cluster.uninstall(app);
            install_spec(cluster, spec)
        }
        ChurnMutation::PolicyAdd { app, policy } => {
            let mut meta = ObjectMeta::named(policy.as_str());
            meta.annotations
                .insert(RELEASE_ANNOTATION.to_string(), app.clone());
            let selector =
                LabelSelector::from_labels(Labels::from_pairs([(INSTANCE_KEY, app.as_str())]));
            cluster
                .apply(Object::NetworkPolicy(NetworkPolicy::deny_all_ingress(
                    meta, selector,
                )))
                .map(|_| ())
                .map_err(|source| CensusError::Install {
                    app: app.clone(),
                    source,
                })
        }
        ChurnMutation::Scale {
            workload, replicas, ..
        } => {
            cluster.scale_workload(workload, *replicas);
            cluster.reconcile();
            Ok(())
        }
    }
}

fn install_spec(cluster: &mut Cluster, spec: &AppSpec) -> Result<(), CensusError> {
    let built = build_app(spec);
    for (image, behavior) in &built.behaviors {
        cluster.register_behavior(image.clone(), behavior.clone());
    }
    let rendered = built
        .compiled()
        .map_err(|source| CensusError::Render {
            app: spec.name.clone(),
            source,
        })?
        .render(&Release::new(&spec.name, "default"))
        .map_err(|source| CensusError::Render {
            app: spec.name.clone(),
            source,
        })?;
    cluster
        .install(&rendered)
        .map(|_| ())
        .map_err(|source| CensusError::Install {
            app: spec.name.clone(),
            source,
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CorpusProfile;
    use ij_cluster::{BehaviorRegistry, ClusterConfig};

    fn session(seed: u64, horizon: usize) -> ChurnSession {
        ChurnSession::new(CorpusGenerator::new(
            CorpusProfile::named("baseline")
                .expect("known profile")
                .with_apps(horizon)
                .with_seed(seed),
        ))
    }

    fn fresh_cluster() -> Cluster {
        Cluster::new(ClusterConfig {
            nodes: 3,
            seed: 11,
            behaviors: BehaviorRegistry::new(),
        })
    }

    #[test]
    fn mutation_stream_is_deterministic() {
        let mut a = session(7, 64);
        let mut b = session(7, 64);
        for _ in 0..50 {
            assert_eq!(a.next_mutation(), b.next_mutation());
        }
        let mut c = session(8, 64);
        let differs = (0..50).any(|_| a.next_mutation() != c.next_mutation());
        assert!(differs, "different seeds must diverge");
    }

    #[test]
    fn mutations_apply_cleanly_and_cover_every_kind() {
        let mut session = session(42, 128);
        let mut cluster = fresh_cluster();
        let mut kinds = std::collections::BTreeSet::new();
        for _ in 0..120 {
            let mutation = session.next_mutation();
            kinds.insert(mutation.kind());
            apply_mutation(&mut cluster, &mutation).expect("churn mutations must apply");
        }
        assert_eq!(
            kinds.into_iter().collect::<Vec<_>>(),
            vec!["install", "label-flip", "policy-add", "scale", "uninstall"],
            "the stream exercises the full mutation matrix"
        );
        // Session bookkeeping mirrors the cluster's installed releases.
        let installed: std::collections::BTreeSet<&str> = session.installed().collect();
        assert!(!installed.is_empty());
        for app in &installed {
            assert!(
                cluster.objects().iter().any(|o| o
                    .meta()
                    .annotations
                    .get(RELEASE_ANNOTATION)
                    .map(String::as_str)
                    == Some(app)),
                "installed app {app} has objects in the cluster"
            );
        }
    }

    #[test]
    fn label_flip_toggles_the_marker_token() {
        let mut s = session(3, 32);
        // Drive until a label flip shows up, applying everything.
        let mut cluster = fresh_cluster();
        for _ in 0..200 {
            let m = s.next_mutation();
            apply_mutation(&mut cluster, &m).unwrap();
            if let ChurnMutation::LabelFlip { app, spec } = &m {
                let count = spec
                    .plan
                    .m4star_tokens
                    .iter()
                    .filter(|t| **t == FLIP_TOKEN)
                    .count();
                assert!(count <= 1, "flip must toggle, not accumulate, for {app}");
                return;
            }
        }
        panic!("no label flip in 200 mutations");
    }

    #[test]
    fn preinstall_populates_without_duplicates() {
        let mut s = session(5, 16);
        let mutations = s.preinstall(10);
        assert_eq!(mutations.len(), 10);
        let mut cluster = fresh_cluster();
        for m in &mutations {
            assert!(matches!(m, ChurnMutation::Install { .. }));
            apply_mutation(&mut cluster, m).unwrap();
        }
        assert_eq!(s.installed().count(), 10);
        // The horizon caps distinct concurrent installs.
        assert_eq!(s.preinstall(100).len(), 6);
    }
}
