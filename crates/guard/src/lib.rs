//! # ij-guard — defending the cluster
//!
//! The paper's title promises *defense*, and its mitigation section (§3.5)
//! plus future-work direction (deriving network policies automatically from
//! declared connectivity) describe one. This crate implements that defense
//! on top of the analyzer:
//!
//! * [`GuardAdmission`] — a validating admission controller for the
//!   simulator's API server. It rejects (or warns about) objects that would
//!   introduce statically-detectable misconfigurations *before* they land in
//!   the cluster: label collisions with existing resources (M4/M4\*, the
//!   check Kubernetes itself never performs), services without targets
//!   (M5D), services referencing undeclared ports (M5B), and hostNetwork
//!   pods (M7).
//! * [`PolicySynthesizer`] — derives least-privilege NetworkPolicies from
//!   the declared ports of each compute unit, turning the default-allow
//!   cluster into declared-ports-only (mitigating M6 and cutting off every
//!   undeclared M1 port). Dynamic ports (M2) cannot be expressed statically;
//!   the synthesizer reports those as residual risks instead of silently
//!   ignoring them.
//! * [`ContinuousAuditor`] — a reconciler that re-runs the hybrid analyzer
//!   against the live cluster and reports finding deltas, the
//!   "monitoring tools that provide proactive advice" the paper calls for.
//! * [`IncrementalAuditor`] — the delta-aware version of the auditor for
//!   whole multi-release clusters under churn: it consumes the cluster's
//!   dirty-set summaries to re-analyze only dirtied releases (and the
//!   cluster-wide label pass only when labels moved), with the full
//!   recompute kept as the property-tested oracle.

mod admission;
mod audit;
mod incremental;
mod synth;

pub use admission::{GuardAdmission, GuardPolicy};
pub use audit::{AuditDelta, ContinuousAuditor};
pub use incremental::IncrementalAuditor;
pub use synth::{PolicySynthesizer, SynthesisOutcome};
