//! NetworkPolicy synthesis from declared ports.
//!
//! The paper argues (§5.2, §6) that the `NetworkPolicy` resource is the
//! right vehicle for a generic, plugin-independent policy description, and
//! that declared port information — when accurate — can drive automatic
//! policy generation (Wikimedia already does this with in-house tooling).
//! This synthesizer is that idea: one ingress policy per compute unit
//! allowing exactly the declared ports, which flips the unit from
//! default-allow to declared-ports-only.

use ij_core::{ComputeUnit, StaticModel};
use ij_model::{
    LabelSelector, NetworkPolicy, NetworkPolicyRule, NetworkPolicySpec, Object, ObjectMeta,
    PolicyPort, PolicyPortRef, PolicyType,
};

/// What the synthesizer produced, including residual risks it cannot cover.
#[derive(Debug, Clone)]
pub struct SynthesisOutcome {
    /// Generated policies, one per eligible compute unit.
    pub policies: Vec<NetworkPolicy>,
    /// Units skipped because policies cannot protect them (hostNetwork, M7).
    pub skipped_host_network: Vec<String>,
    /// Units skipped because they carry no labels to select.
    pub skipped_unlabeled: Vec<String>,
}

impl SynthesisOutcome {
    /// Policies wrapped as applyable objects.
    pub fn objects(&self) -> Vec<Object> {
        self.policies
            .iter()
            .cloned()
            .map(Object::NetworkPolicy)
            .collect()
    }
}

/// Derives least-privilege ingress policies from declarations.
///
/// ```
/// use ij_core::StaticModel;
/// use ij_guard::PolicySynthesizer;
/// use ij_model::PolicyPortRef;
///
/// let pod = ij_model::decode_manifest("\
/// apiVersion: v1
/// kind: Pod
/// metadata:
///   name: web
///   labels:
///     app: web
/// spec:
///   containers:
///     - name: web
///       image: acme/web
///       ports:
///         - containerPort: 8080
/// ").unwrap();
///
/// let model = StaticModel::from_objects(std::slice::from_ref(&pod));
/// let outcome = PolicySynthesizer::new().synthesize(&model);
///
/// // One ingress policy per labeled unit, allowing exactly the declared
/// // ports — every undeclared (M1) port is cut off once it is applied.
/// assert_eq!(outcome.policies.len(), 1);
/// let policy = &outcome.policies[0];
/// assert_eq!(policy.meta.name, "ij-guard-web");
/// assert_eq!(
///     policy.spec.ingress[0].ports[0].port,
///     Some(PolicyPortRef::Number(8080))
/// );
/// ```
#[derive(Debug, Clone, Default)]
pub struct PolicySynthesizer {
    /// Prefix for generated policy names.
    pub name_prefix: String,
}

impl PolicySynthesizer {
    /// A synthesizer with the default `ij-guard` name prefix.
    pub fn new() -> Self {
        PolicySynthesizer {
            name_prefix: "ij-guard".to_string(),
        }
    }

    /// Synthesizes policies for every labeled, non-hostNetwork compute unit
    /// in the model. The generated policy:
    ///
    /// * selects the unit's pods by their full label set;
    /// * allows ingress **only** on the unit's declared ports (any peer —
    ///   peer narrowing needs connectivity intent the chart does not
    ///   declare);
    /// * thereby denies every *undeclared* port, so an M1 port that was
    ///   reachable before synthesis is cut off after it.
    pub fn synthesize(&self, model: &StaticModel) -> SynthesisOutcome {
        let mut outcome = SynthesisOutcome {
            policies: Vec::new(),
            skipped_host_network: Vec::new(),
            skipped_unlabeled: Vec::new(),
        };
        for unit in &model.units {
            if unit.host_network {
                outcome.skipped_host_network.push(unit.name.clone());
                continue;
            }
            if unit.labels.is_empty() {
                outcome.skipped_unlabeled.push(unit.name.clone());
                continue;
            }
            outcome.policies.push(self.policy_for(unit));
        }
        outcome
    }

    fn policy_for(&self, unit: &ComputeUnit) -> NetworkPolicy {
        let ports: Vec<PolicyPort> = unit
            .declared_ports()
            .map(|(port, protocol)| PolicyPort {
                protocol,
                port: Some(PolicyPortRef::Number(port)),
                end_port: None,
            })
            .collect();
        let short = unit.name.rsplit('/').next().unwrap_or(&unit.name);
        NetworkPolicy {
            meta: ObjectMeta::named(format!("{}-{}", self.name_prefix, short))
                .in_namespace(&unit.namespace),
            spec: NetworkPolicySpec {
                pod_selector: LabelSelector::from_labels(unit.labels.clone()),
                policy_types: vec![PolicyType::Ingress],
                // With declared ports: allow any peer on exactly those ports.
                // With none: a deny-all ingress policy (no rules).
                ingress: if ports.is_empty() {
                    vec![]
                } else {
                    vec![NetworkPolicyRule {
                        peers: vec![],
                        ports,
                    }]
                },
                egress: vec![],
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ij_cluster::{
        BehaviorRegistry, Cluster, ClusterConfig, ConnectOutcome, ContainerBehavior, ListenerSpec,
    };
    use ij_model::{Container, ContainerPort, Labels, Pod, PodSpec};

    fn model_with(units: Vec<Object>) -> StaticModel {
        StaticModel::from_objects(&units)
    }

    fn pod_obj(
        name: &str,
        labels: &[(&str, &str)],
        ports: Vec<ContainerPort>,
        host: bool,
    ) -> Object {
        Object::Pod(Pod::new(
            ObjectMeta::named(name).with_labels(Labels::from_pairs(labels.iter().copied())),
            PodSpec {
                containers: vec![Container::new("c", format!("img/{name}")).with_ports(ports)],
                host_network: host,
                node_name: None,
            },
        ))
    }

    #[test]
    fn one_policy_per_labeled_unit() {
        let model = model_with(vec![
            pod_obj("a", &[("app", "a")], vec![ContainerPort::tcp(80)], false),
            pod_obj("b", &[("app", "b")], vec![ContainerPort::tcp(81)], false),
            pod_obj("host", &[("app", "h")], vec![], true),
            pod_obj("naked", &[], vec![], false),
        ]);
        let outcome = PolicySynthesizer::new().synthesize(&model);
        assert_eq!(outcome.policies.len(), 2);
        assert_eq!(outcome.skipped_host_network, vec!["default/host"]);
        assert_eq!(outcome.skipped_unlabeled, vec!["default/naked"]);
    }

    #[test]
    fn synthesized_policy_allows_declared_port_only() {
        // End-to-end: an app whose container opens a declared port (8080)
        // and an undeclared backdoor (9999). Before synthesis both are
        // reachable; after synthesis only 8080 is.
        let mut behaviors = BehaviorRegistry::new();
        behaviors.register(
            "img/web",
            ContainerBehavior::Listeners(vec![ListenerSpec::tcp(8080), ListenerSpec::tcp(9999)]),
        );
        let mut cluster = Cluster::new(ClusterConfig {
            nodes: 1,
            seed: 2,
            behaviors,
        });
        cluster
            .apply(pod_obj(
                "web",
                &[("app", "web")],
                vec![ContainerPort::tcp(8080)],
                false,
            ))
            .unwrap();
        cluster
            .apply(pod_obj("attacker", &[("role", "attacker")], vec![], false))
            .unwrap();
        cluster.reconcile();

        assert_eq!(
            cluster.connect(
                "default/attacker",
                "default/web",
                9999,
                ij_model::Protocol::Tcp
            ),
            Some(ConnectOutcome::Connected),
            "undeclared port reachable before synthesis"
        );

        let model = StaticModel::from_objects(cluster.objects());
        let outcome = PolicySynthesizer::new().synthesize(&model);
        for obj in outcome.objects() {
            cluster.apply(obj).unwrap();
        }

        assert_eq!(
            cluster.connect(
                "default/attacker",
                "default/web",
                8080,
                ij_model::Protocol::Tcp
            ),
            Some(ConnectOutcome::Connected),
            "declared port stays reachable"
        );
        assert_eq!(
            cluster.connect(
                "default/attacker",
                "default/web",
                9999,
                ij_model::Protocol::Tcp
            ),
            Some(ConnectOutcome::DeniedIngress),
            "undeclared port cut off after synthesis"
        );
    }

    #[test]
    fn unit_without_declared_ports_gets_deny_all() {
        let model = model_with(vec![pod_obj("quiet", &[("app", "q")], vec![], false)]);
        let outcome = PolicySynthesizer::new().synthesize(&model);
        assert_eq!(outcome.policies.len(), 1);
        assert!(outcome.policies[0].spec.ingress.is_empty());
    }

    #[test]
    fn policy_names_carry_prefix_and_namespace() {
        let mut obj = pod_obj(
            "db",
            &[("app", "db")],
            vec![ContainerPort::tcp(5432)],
            false,
        );
        obj.meta_mut().namespace = "prod".into();
        let model = model_with(vec![obj]);
        let outcome = PolicySynthesizer::new().synthesize(&model);
        assert_eq!(outcome.policies[0].meta.name, "ij-guard-db");
        assert_eq!(outcome.policies[0].meta.namespace, "prod");
    }
}
