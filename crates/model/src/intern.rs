//! Interned labels and compiled selectors.
//!
//! Label matching is the innermost loop of every reachability question the
//! paper asks: policies select pods by label, peers select pods by label,
//! and the census evaluates those selectors over every (policy, pod) pair.
//! Doing that with string maps means re-hashing the same keys and values on
//! every probe. This module interns each distinct label key and `(key,
//! value)` pair once into dense integer ids, so a label set becomes a sorted
//! id vector and selector evaluation becomes integer merges — no string
//! comparison on the hot path.
//!
//! The compiled forms are *semantically identical* to the string-based
//! [`LabelSelector::matches`] (property-tested in `tests/prop.rs`); the
//! naive path stays around as the oracle.

use crate::meta::{LabelSelector, Labels, SelectorOp};
use std::collections::HashMap;

/// Dense id of an interned label key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct KeyId(u32);

/// Dense id of an interned `(key, value)` label pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LabelId(u32);

/// Intern table for label keys and `(key, value)` pairs.
///
/// Ids are assigned in first-seen order; the table only grows. Two strings
/// intern to the same id iff they are equal, so id equality is string
/// equality and sorted-id containment is label-set containment.
#[derive(Debug, Clone, Default)]
pub struct LabelInterner {
    keys: HashMap<String, KeyId>,
    pairs: HashMap<(KeyId, String), LabelId>,
}

impl LabelInterner {
    /// An empty intern table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a label key.
    pub fn key(&mut self, key: &str) -> KeyId {
        if let Some(&id) = self.keys.get(key) {
            return id;
        }
        let id = KeyId(u32::try_from(self.keys.len()).expect("fewer than 2^32 label keys"));
        self.keys.insert(key.to_string(), id);
        id
    }

    /// Interns a `(key, value)` pair.
    pub fn pair(&mut self, key: &str, value: &str) -> LabelId {
        let key_id = self.key(key);
        if let Some(&id) = self.pairs.get(&(key_id, value.to_string())) {
            return id;
        }
        let id = LabelId(u32::try_from(self.pairs.len()).expect("fewer than 2^32 label pairs"));
        self.pairs.insert((key_id, value.to_string()), id);
        id
    }

    /// Looks a key up without interning it: `None` when the key has never
    /// been interned. Rule-pack evaluation uses this to turn a unit's label
    /// strings into id probes against a table frozen at compile time.
    pub fn lookup_key(&self, key: &str) -> Option<KeyId> {
        self.keys.get(key).copied()
    }

    /// Looks a `(key, value)` pair up without interning it.
    pub fn lookup_pair(&self, key: &str, value: &str) -> Option<LabelId> {
        let key_id = self.lookup_key(key)?;
        self.pairs.get(&(key_id, value.to_string())).copied()
    }

    /// Interns a whole label set into its compiled form.
    pub fn intern(&mut self, labels: &Labels) -> LabelSet {
        let mut pairs = Vec::with_capacity(labels.len());
        let mut keys = Vec::with_capacity(labels.len());
        for (k, v) in labels.iter() {
            keys.push(self.key(k));
            pairs.push(self.pair(k, v));
        }
        pairs.sort_unstable();
        keys.sort_unstable();
        LabelSet { pairs, keys }
    }

    /// Number of distinct keys interned so far.
    pub fn key_count(&self) -> usize {
        self.keys.len()
    }

    /// Number of distinct `(key, value)` pairs interned so far.
    pub fn pair_count(&self) -> usize {
        self.pairs.len()
    }
}

/// A label set in interned form: sorted pair ids plus sorted key ids.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LabelSet {
    pairs: Vec<LabelId>,
    keys: Vec<KeyId>,
}

impl LabelSet {
    /// True when the `(key, value)` pair is present.
    pub fn contains_pair(&self, id: LabelId) -> bool {
        self.pairs.binary_search(&id).is_ok()
    }

    /// True when the key is present (with any value).
    pub fn contains_key(&self, id: KeyId) -> bool {
        self.keys.binary_search(&id).is_ok()
    }

    /// True when every pair in `required` (sorted ascending) is present —
    /// the interned form of [`Labels::contains_all`], as a linear merge
    /// over two sorted id vectors.
    pub fn contains_all(&self, required: &[LabelId]) -> bool {
        let mut mine = self.pairs.iter();
        'outer: for want in required {
            for have in mine.by_ref() {
                match have.cmp(want) {
                    std::cmp::Ordering::Less => continue,
                    std::cmp::Ordering::Equal => continue 'outer,
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// Number of labels in the set.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

/// One compiled `matchExpressions` requirement. `In`/`NotIn` are
/// pre-resolved to the pair ids of their candidate values: a label set
/// satisfies `In` iff it contains one of those pairs (a key maps to at most
/// one value, so pair containment *is* value membership).
#[derive(Debug, Clone)]
enum CompiledRequirement {
    /// Key's value must be one of the candidate pairs (sorted).
    In { pairs: Vec<LabelId> },
    /// Key's value must not be any of the candidate pairs (absent key ok).
    NotIn { pairs: Vec<LabelId> },
    /// Key must be present.
    Exists(KeyId),
    /// Key must be absent.
    DoesNotExist(KeyId),
}

impl CompiledRequirement {
    fn matches(&self, set: &LabelSet) -> bool {
        match self {
            CompiledRequirement::In { pairs } => pairs.iter().any(|&p| set.contains_pair(p)),
            CompiledRequirement::NotIn { pairs } => !pairs.iter().any(|&p| set.contains_pair(p)),
            CompiledRequirement::Exists(key) => set.contains_key(*key),
            CompiledRequirement::DoesNotExist(key) => !set.contains_key(*key),
        }
    }
}

/// A [`LabelSelector`] compiled against an intern table: `matchLabels`
/// becomes a sorted pair-id subset test and every `matchExpressions` entry
/// a compiled requirement. Evaluation never touches a string.
#[derive(Debug, Clone, Default)]
pub struct SelectorMatcher {
    equality: Vec<LabelId>,
    requirements: Vec<CompiledRequirement>,
}

impl SelectorMatcher {
    /// Compiles a selector, interning every key and value it mentions.
    pub fn compile(selector: &LabelSelector, interner: &mut LabelInterner) -> Self {
        let mut equality: Vec<LabelId> = selector
            .match_labels
            .iter()
            .map(|(k, v)| interner.pair(k, v))
            .collect();
        equality.sort_unstable();
        let requirements = selector
            .match_expressions
            .iter()
            .map(|req| {
                let key = interner.key(&req.key);
                let mut pairs: Vec<LabelId> = req
                    .values
                    .iter()
                    .map(|v| interner.pair(&req.key, v))
                    .collect();
                pairs.sort_unstable();
                match req.op {
                    SelectorOp::In => CompiledRequirement::In { pairs },
                    SelectorOp::NotIn => CompiledRequirement::NotIn { pairs },
                    SelectorOp::Exists => CompiledRequirement::Exists(key),
                    SelectorOp::DoesNotExist => CompiledRequirement::DoesNotExist(key),
                }
            })
            .collect();
        SelectorMatcher {
            equality,
            requirements,
        }
    }

    /// Evaluates the compiled selector against an interned label set. Equal
    /// to [`LabelSelector::matches`] on the corresponding string sets.
    pub fn matches(&self, set: &LabelSet) -> bool {
        set.contains_all(&self.equality) && self.requirements.iter().all(|r| r.matches(set))
    }

    /// True when the selector has no requirements (matches everything).
    pub fn matches_everything(&self) -> bool {
        self.equality.is_empty() && self.requirements.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::SelectorRequirement;

    fn labels(pairs: &[(&str, &str)]) -> Labels {
        Labels::from_pairs(pairs.iter().copied())
    }

    #[test]
    fn interning_is_idempotent() {
        let mut interner = LabelInterner::new();
        let a = interner.pair("app", "web");
        let b = interner.pair("app", "web");
        assert_eq!(a, b);
        assert_ne!(interner.pair("app", "db"), a);
        assert_eq!(interner.key("app"), interner.key("app"));
        assert_eq!(interner.key_count(), 1);
        assert_eq!(interner.pair_count(), 2);
    }

    #[test]
    fn lookup_never_interns() {
        let mut interner = LabelInterner::new();
        let pair = interner.pair("app", "web");
        let key = interner.lookup_key("app").expect("interned");
        assert_eq!(interner.lookup_pair("app", "web"), Some(pair));
        assert_eq!(interner.pair("app", "web"), pair);
        assert_eq!(interner.key("app"), key);
        assert_eq!(interner.lookup_key("tier"), None);
        assert_eq!(interner.lookup_pair("app", "db"), None);
        assert_eq!(interner.lookup_pair("tier", "front"), None);
        assert_eq!(interner.key_count(), 1, "lookups must not grow the table");
        assert_eq!(interner.pair_count(), 1);
    }

    #[test]
    fn contains_all_matches_string_semantics() {
        let mut interner = LabelInterner::new();
        let set = interner.intern(&labels(&[("app", "web"), ("tier", "front")]));
        let want_app = vec![interner.pair("app", "web")];
        let mut want_both = vec![interner.pair("tier", "front"), interner.pair("app", "web")];
        want_both.sort_unstable();
        let want_miss = vec![interner.pair("app", "db")];
        assert!(set.contains_all(&[]));
        assert!(set.contains_all(&want_app));
        assert!(set.contains_all(&want_both));
        assert!(!set.contains_all(&want_miss));
    }

    #[test]
    fn compiled_selector_equals_naive_on_expressions() {
        let selector = LabelSelector {
            match_labels: labels(&[("app", "web")]),
            match_expressions: vec![
                SelectorRequirement {
                    key: "env".into(),
                    op: SelectorOp::In,
                    values: vec!["prod".into(), "staging".into()],
                },
                SelectorRequirement {
                    key: "canary".into(),
                    op: SelectorOp::DoesNotExist,
                    values: vec![],
                },
            ],
        };
        let mut interner = LabelInterner::new();
        let matcher = SelectorMatcher::compile(&selector, &mut interner);
        for candidate in [
            labels(&[("app", "web"), ("env", "prod")]),
            labels(&[("app", "web"), ("env", "dev")]),
            labels(&[("app", "web"), ("env", "prod"), ("canary", "true")]),
            labels(&[("env", "prod")]),
            labels(&[]),
        ] {
            let set = interner.intern(&candidate);
            assert_eq!(
                matcher.matches(&set),
                selector.matches(&candidate),
                "diverged on {candidate}"
            );
        }
    }

    #[test]
    fn empty_selector_matches_everything() {
        let mut interner = LabelInterner::new();
        let matcher = SelectorMatcher::compile(&LabelSelector::everything(), &mut interner);
        assert!(matcher.matches_everything());
        assert!(matcher.matches(&interner.intern(&labels(&[("a", "b")]))));
        assert!(matcher.matches(&LabelSet::default()));
    }

    #[test]
    fn not_in_matches_absent_key() {
        let selector = LabelSelector {
            match_labels: Labels::new(),
            match_expressions: vec![SelectorRequirement {
                key: "env".into(),
                op: SelectorOp::NotIn,
                values: vec!["prod".into()],
            }],
        };
        let mut interner = LabelInterner::new();
        let matcher = SelectorMatcher::compile(&selector, &mut interner);
        assert!(matcher.matches(&interner.intern(&labels(&[]))));
        assert!(matcher.matches(&interner.intern(&labels(&[("env", "dev")]))));
        assert!(!matcher.matches(&interner.intern(&labels(&[("env", "prod")]))));
    }
}
