//! Offline shim for `crossbeam`.
//!
//! Only `crossbeam::channel::{unbounded, Sender, Receiver}` is used by the
//! workspace (the cluster's watch-event fan-out). `std::sync::mpsc` provides
//! the same unbounded-channel semantics for that use: cloneable senders,
//! `send` failing once the receiver is dropped (which prunes dead watchers),
//! and `try_iter` draining without blocking.

pub mod channel {
    pub use std::sync::mpsc::{Receiver, SendError, Sender, TryRecvError};

    /// Creates an unbounded channel, mirroring `crossbeam_channel::unbounded`.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}
