//! Reproducibility: the whole evaluation is a pure function of the seed —
//! independent of how many pipeline workers analyze the corpus.

use inside_job::core::MisconfigId;
use inside_job::datasets::{
    corpus, run_census, CensusPipeline, CorpusGenerator, CorpusOptions, CorpusProfile, Org,
};

#[test]
fn census_is_deterministic_across_runs() {
    let slice: Vec<_> = corpus()
        .into_iter()
        .filter(|a| a.org == Org::PrometheusCommunity)
        .collect();
    let a = run_census(&slice, &CorpusOptions::default()).expect("corpus slice runs");
    let b = run_census(&slice, &CorpusOptions::default()).expect("corpus slice runs");
    assert_eq!(a.apps.len(), b.apps.len());
    for (x, y) in a.apps.iter().zip(b.apps.iter()) {
        assert_eq!(x.findings, y.findings, "app {}", x.app);
    }
}

#[test]
fn parallel_census_is_byte_identical_to_sequential() {
    // The acceptance bar of the pipeline redesign (re-verified across the
    // compiled render layer): a `threads(n)` census must equal the
    // sequential same-seed run byte for byte (via the canonical Debug
    // rendering), not merely in counts — for every worker count.
    let slice: Vec<_> = corpus()
        .into_iter()
        .filter(|a| a.org == Org::PrometheusCommunity)
        .collect();
    let sequential = CensusPipeline::builder()
        .build()
        .run(&slice)
        .expect("sequential census runs");
    for threads in [2usize, 4, 8] {
        let parallel = CensusPipeline::builder()
            .threads(threads)
            .build()
            .run(&slice)
            .expect("parallel census runs");
        assert_eq!(
            format!("{sequential:#?}"),
            format!("{parallel:#?}"),
            "threads({threads}) census diverged from the sequential run"
        );
    }
}

#[test]
fn policy_impact_is_byte_identical_through_the_render_cache() {
    // The §4.3.2 study re-renders the census apps with policies
    // force-enabled; whether those renders are cache misses (fresh
    // pipeline) or hits (after a census, or repeated) must never change a
    // byte of the rows.
    let slice: Vec<_> = corpus().into_iter().filter(|a| a.org == Org::Eea).collect();
    let fresh = CensusPipeline::builder()
        .build()
        .policy_impact(&slice)
        .expect("fresh policy impact runs");
    let shared = CensusPipeline::builder().threads(8).build();
    shared.run(&slice).expect("threaded census runs");
    let warm = shared
        .policy_impact(&slice)
        .expect("warm policy impact runs");
    let again = shared
        .policy_impact(&slice)
        .expect("cached policy impact runs");
    assert_eq!(format!("{fresh:#?}"), format!("{warm:#?}"));
    assert_eq!(format!("{warm:#?}"), format!("{again:#?}"));
}

#[test]
fn legacy_wrapper_matches_pipeline_census() {
    // The preserved free function and the pipeline front door are the same
    // computation.
    let slice: Vec<_> = corpus()
        .into_iter()
        .filter(|a| a.org == Org::Wikimedia)
        .collect();
    let wrapper = run_census(&slice, &CorpusOptions::default()).expect("wrapper runs");
    let pipeline = CensusPipeline::builder()
        .build()
        .run(&slice)
        .expect("pipeline runs");
    assert_eq!(format!("{wrapper:#?}"), format!("{pipeline:#?}"));
}

#[test]
fn synthetic_generation_is_byte_identical_across_thread_counts() {
    // The generator synthesizes spec i inside whichever worker claims index
    // i, so this exercises the vendored xoshiro RNG from generation through
    // render, install, probe, and analysis: the same seed must produce a
    // byte-identical census no matter how many workers raced over it.
    let generator = CorpusGenerator::new(
        CorpusProfile::named("baseline")
            .expect("baseline profile")
            .with_apps(60)
            .with_seed(7),
    );
    let sequential = CensusPipeline::builder()
        .seed(7)
        .build()
        .run_generated(&generator)
        .expect("sequential generated census runs");
    for threads in [2usize, 4, 8] {
        let parallel = CensusPipeline::builder()
            .seed(7)
            .threads(threads)
            .build()
            .run_generated(&generator)
            .expect("parallel generated census runs");
        assert_eq!(
            format!("{sequential:#?}"),
            format!("{parallel:#?}"),
            "threads({threads}) generated census diverged from the sequential run"
        );
    }
}

#[test]
fn synthetic_population_is_a_pure_function_of_profile_and_seed() {
    let make = || {
        CorpusGenerator::new(
            CorpusProfile::named("legacy")
                .expect("legacy profile")
                .with_apps(48)
                .with_seed(0xC0FFEE),
        )
    };
    let (a, b) = (make(), make());
    // Index access, iteration, and a fresh generator all agree byte for
    // byte — and out-of-order access cannot perturb later specs.
    let backwards: Vec<_> = (0..48).rev().map(|i| a.spec(i)).collect();
    for (i, spec) in b.iter().enumerate() {
        assert_eq!(
            format!("{spec:?}"),
            format!("{:?}", backwards[47 - i]),
            "index {i}"
        );
    }
    assert_eq!(
        format!("{:#?}", a.describe()),
        format!("{:#?}", b.describe())
    );
}

#[test]
fn different_seed_same_census_shape() {
    // Ephemeral port numbers change with the seed, but the *findings* (which
    // never depend on the specific port value, only its class) must not.
    let slice: Vec<_> = corpus()
        .into_iter()
        .filter(|a| a.org == Org::Wikimedia)
        .collect();
    let a = run_census(&slice, &CorpusOptions::default()).expect("corpus slice runs");
    let b = run_census(
        &slice,
        &CorpusOptions {
            seed: 0xDEADBEEF,
            ..Default::default()
        },
    )
    .expect("corpus slice runs");
    for id in MisconfigId::ALL {
        let count =
            |c: &inside_job::core::Census| c.apps.iter().map(|r| r.count_of(id)).sum::<usize>();
        assert_eq!(count(&a), count(&b), "{id} count differs across seeds");
    }
}
