//! Component microbenchmarks: the hot paths of the pipeline
//! (parse → render → install → probe → analyze) plus the policy engine.

use criterion::{criterion_group, criterion_main, Criterion};
use ij_chart::Release;
use ij_cluster::{Cluster, ClusterConfig, PolicyEngine};
use ij_core::{chart_defines_network_policies, Analyzer};
use ij_datasets::{build_app, AppSpec, NetpolSpec, Org, Plan};
use ij_probe::{HostBaseline, RuntimeAnalyzer};
use std::hint::black_box;

const SERVICE_YAML: &str = "\
apiVersion: v1
kind: Service
metadata:
  name: web
  labels:
    app.kubernetes.io/name: web
spec:
  type: ClusterIP
  selector:
    app.kubernetes.io/name: web
  ports:
    - name: http
      port: 80
      targetPort: 8080
    - name: metrics
      port: 9102
      targetPort: metrics
";

fn busy_spec() -> AppSpec {
    AppSpec::new(
        "bench-app",
        Org::Bitnami,
        "1.0.0",
        Plan {
            m1: 3,
            m2: 1,
            m3: 2,
            m4a: 1,
            m4b: 1,
            m5a: 1,
            m5b: 1,
            m7: 1,
            netpol: NetpolSpec::DefinedDisabled { loose: false },
            ..Default::default()
        },
    )
}

fn bench_yaml_parse(c: &mut Criterion) {
    c.bench_function("yaml_parse_service", |b| {
        b.iter(|| black_box(ij_yaml::parse(SERVICE_YAML).unwrap()))
    });
}

fn bench_model_decode(c: &mut Criterion) {
    c.bench_function("model_decode_service", |b| {
        b.iter(|| black_box(ij_model::decode_manifest(SERVICE_YAML).unwrap()))
    });
}

fn bench_chart_render(c: &mut Criterion) {
    let built = build_app(&busy_spec());
    let release = Release::new("bench-app", "default");
    c.bench_function("chart_render_busy_app", |b| {
        b.iter(|| black_box(built.chart().render(&release).unwrap().objects.len()))
    });
}

fn bench_cluster_install(c: &mut Criterion) {
    let built = build_app(&busy_spec());
    let rendered = built
        .chart()
        .render(&Release::new("bench-app", "default"))
        .unwrap();
    c.bench_function("cluster_install_reconcile", |b| {
        b.iter(|| {
            let mut cluster = Cluster::new(ClusterConfig {
                nodes: 3,
                seed: 1,
                behaviors: built.registry(),
            });
            cluster.install(&rendered).unwrap();
            black_box(cluster.pods().len())
        })
    });
}

fn bench_policy_engine(c: &mut Criterion) {
    let built = build_app(&busy_spec());
    let rendered = built
        .chart()
        .render(
            &Release::new("bench-app", "default")
                .with_values_yaml("networkPolicy:\n  enabled: true\n")
                .unwrap(),
        )
        .unwrap();
    let mut cluster = Cluster::new(ClusterConfig {
        nodes: 3,
        seed: 1,
        behaviors: built.registry(),
    });
    cluster.install(&rendered).unwrap();
    let policies: Vec<ij_model::NetworkPolicy> =
        cluster.network_policies().into_iter().cloned().collect();
    let pods = cluster.pods().to_vec();
    c.bench_function("policy_engine_full_mesh", |b| {
        b.iter(|| {
            let engine = PolicyEngine::new(&policies, cluster.namespace_labels());
            let mut allowed = 0usize;
            for src in &pods {
                for dst in &pods {
                    if engine
                        .verdict(src, dst, 8080, ij_model::Protocol::Tcp)
                        .is_allowed()
                    {
                        allowed += 1;
                    }
                }
            }
            black_box(allowed)
        })
    });
}

fn bench_probe(c: &mut Criterion) {
    let built = build_app(&busy_spec());
    let rendered = built
        .chart()
        .render(&Release::new("bench-app", "default"))
        .unwrap();
    c.bench_function("probe_double_run", |b| {
        b.iter(|| {
            let mut cluster = Cluster::new(ClusterConfig {
                nodes: 3,
                seed: 1,
                behaviors: built.registry(),
            });
            let baseline = HostBaseline::capture(&cluster);
            cluster.install(&rendered).unwrap();
            let report = RuntimeAnalyzer::default().analyze(&mut cluster, &baseline);
            black_box(report.stable_count() + report.dynamic_count())
        })
    });
}

fn bench_analyzer(c: &mut Criterion) {
    let built = build_app(&busy_spec());
    let rendered = built
        .chart()
        .render(&Release::new("bench-app", "default"))
        .unwrap();
    let mut cluster = Cluster::new(ClusterConfig {
        nodes: 3,
        seed: 1,
        behaviors: built.registry(),
    });
    let baseline = HostBaseline::capture(&cluster);
    cluster.install(&rendered).unwrap();
    let runtime = RuntimeAnalyzer::default().analyze(&mut cluster, &baseline);
    let defines = chart_defines_network_policies(built.chart());
    c.bench_function("analyzer_hybrid_app", |b| {
        b.iter(|| {
            black_box(
                Analyzer::hybrid()
                    .analyze_app(
                        "bench-app",
                        &rendered.objects,
                        &cluster,
                        Some(&runtime),
                        defines,
                    )
                    .len(),
            )
        })
    });
}

fn bench_end_to_end_app(c: &mut Criterion) {
    let app_spec = busy_spec();
    let built = build_app(&app_spec);
    let pipeline = ij_datasets::CensusPipeline::builder().build();
    c.bench_function("end_to_end_single_app", |b| {
        b.iter(|| {
            black_box(
                pipeline
                    .analyze_one(&built)
                    .expect("bench app analyzes")
                    .findings
                    .len(),
            )
        })
    });
}

criterion_group!(
    micro,
    bench_yaml_parse,
    bench_model_decode,
    bench_chart_render,
    bench_cluster_install,
    bench_policy_engine,
    bench_probe,
    bench_analyzer,
    bench_end_to_end_app
);
criterion_main!(micro);
