//! Container runtime behaviour models.
//!
//! In the real study, the authors run the actual container images and read
//! `netstat` inside the pods. Here, an image name resolves to a
//! [`ContainerBehavior`] which says what the process *actually* does with
//! sockets — independently of what the manifest *declares*. The delta between
//! the two is exactly what M1/M2/M3 measure, so the substitution exercises
//! the same analyzer code path as a live container would.

use ij_model::{Container, Protocol};
use std::collections::HashMap;

/// How a listener picks its port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PortSpec {
    /// A fixed port number.
    Static(u16),
    /// An OS-assigned ephemeral port from the host range (32768–60999),
    /// re-drawn on every container start — the paper's M2.
    Ephemeral,
    /// Port taken from an environment variable, falling back to a default
    /// when unset. Models applications whose deployment mode is switched via
    /// env (the paper's "different deployment modes" M3 examples).
    FromEnv {
        /// Variable to read.
        var: String,
        /// Port used when the variable is unset or unparsable; `None` means
        /// the listener simply does not start.
        default: Option<u16>,
    },
}

/// One socket a container process opens when it starts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ListenerSpec {
    /// Port selection.
    pub port: PortSpec,
    /// Transport protocol.
    pub protocol: Protocol,
    /// Bound to `127.0.0.1` only. Loopback listeners are reachable from
    /// other containers in the *same pod* but not from the cluster network
    /// — the distinction Concourse got wrong (§2.1.1: tunnel endpoints that
    /// should have been loopback were cluster-reachable).
    pub loopback_only: bool,
    /// Only open when this `(env var, value)` pair is present on the
    /// container. `None` means always.
    pub when_env: Option<(String, String)>,
}

impl ListenerSpec {
    /// A plain TCP listener on all interfaces.
    pub fn tcp(port: u16) -> Self {
        ListenerSpec {
            port: PortSpec::Static(port),
            protocol: Protocol::Tcp,
            loopback_only: false,
            when_env: None,
        }
    }

    /// A UDP listener on all interfaces.
    pub fn udp(port: u16) -> Self {
        ListenerSpec {
            protocol: Protocol::Udp,
            ..ListenerSpec::tcp(port)
        }
    }

    /// An ephemeral TCP listener (new port every start).
    pub fn ephemeral() -> Self {
        ListenerSpec {
            port: PortSpec::Ephemeral,
            protocol: Protocol::Tcp,
            loopback_only: false,
            when_env: None,
        }
    }

    /// Builder-style: restrict to loopback.
    pub fn loopback(mut self) -> Self {
        self.loopback_only = true;
        self
    }

    /// Builder-style: gate on an env var value.
    pub fn when(mut self, var: impl Into<String>, value: impl Into<String>) -> Self {
        self.when_env = Some((var.into(), value.into()));
        self
    }

    /// True when the gate (if any) is satisfied by the container's env.
    pub fn enabled_for(&self, container: &Container) -> bool {
        match &self.when_env {
            None => true,
            Some((var, want)) => container.env_value(var) == Some(want.as_str()),
        }
    }
}

/// What a container image does with sockets at runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContainerBehavior {
    /// The well-behaved default: open exactly the declared container ports.
    /// Unknown images resolve to this, so a chart with no registered
    /// behaviour has no runtime/declaration delta.
    DeclaredPorts,
    /// An explicit list of listeners, *independent* of the declaration.
    Listeners(Vec<ListenerSpec>),
}

impl ContainerBehavior {
    /// Resolves the concrete listener specs for a container: either its
    /// declared ports or the explicit behaviour list filtered by env gates.
    pub fn listeners_for(&self, container: &Container) -> Vec<ListenerSpec> {
        match self {
            ContainerBehavior::DeclaredPorts => container
                .ports
                .iter()
                .map(|p| ListenerSpec {
                    port: PortSpec::Static(p.container_port),
                    protocol: p.protocol,
                    loopback_only: false,
                    when_env: None,
                })
                .collect(),
            ContainerBehavior::Listeners(specs) => specs
                .iter()
                .filter(|s| s.enabled_for(container))
                .cloned()
                .collect(),
        }
    }
}

/// Maps image references to behaviours.
///
/// Lookup tries the exact reference first, then the reference with its tag
/// stripped, then registered prefixes — so `bitnami/flink:1.17` matches a
/// behaviour registered for `bitnami/flink`.
#[derive(Debug, Clone, Default)]
pub struct BehaviorRegistry {
    exact: HashMap<String, ContainerBehavior>,
    prefixes: Vec<(String, ContainerBehavior)>,
}

impl BehaviorRegistry {
    /// An empty registry: every image behaves as declared.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a behaviour for an exact image reference (tag-insensitive).
    pub fn register(&mut self, image: impl Into<String>, behavior: ContainerBehavior) {
        self.exact.insert(image.into(), behavior);
    }

    /// Registers a behaviour for any image starting with `prefix`.
    pub fn register_prefix(&mut self, prefix: impl Into<String>, behavior: ContainerBehavior) {
        self.prefixes.push((prefix.into(), behavior));
    }

    /// Resolves an image reference to its behaviour.
    pub fn resolve(&self, image: &str) -> &ContainerBehavior {
        if let Some(b) = self.exact.get(image) {
            return b;
        }
        let untagged = image.split(':').next().unwrap_or(image);
        if let Some(b) = self.exact.get(untagged) {
            return b;
        }
        for (prefix, b) in &self.prefixes {
            if image.starts_with(prefix.as_str()) {
                return b;
            }
        }
        &ContainerBehavior::DeclaredPorts
    }

    /// Number of registered behaviours.
    pub fn len(&self) -> usize {
        self.exact.len() + self.prefixes.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.exact.is_empty() && self.prefixes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ij_model::ContainerPort;

    #[test]
    fn default_behavior_opens_declared_ports() {
        let c = Container::new("flink", "bitnami/flink")
            .with_ports(vec![ContainerPort::tcp(6123), ContainerPort::tcp(8081)]);
        let b = ContainerBehavior::DeclaredPorts;
        let l = b.listeners_for(&c);
        assert_eq!(l.len(), 2);
        assert_eq!(l[0].port, PortSpec::Static(6123));
    }

    #[test]
    fn explicit_listeners_ignore_declaration() {
        // Figure 1: flink declares 6121/6123/8081 but actually opens
        // 6123, 8081, and an ephemeral port.
        let c = Container::new("flink", "bitnami/flink").with_ports(vec![
            ContainerPort::tcp(6121),
            ContainerPort::tcp(6123),
            ContainerPort::tcp(8081),
        ]);
        let b = ContainerBehavior::Listeners(vec![
            ListenerSpec::tcp(6123),
            ListenerSpec::tcp(8081),
            ListenerSpec::ephemeral(),
        ]);
        let l = b.listeners_for(&c);
        assert_eq!(l.len(), 3);
        assert!(l.iter().any(|s| s.port == PortSpec::Ephemeral));
        assert!(!l.iter().any(|s| s.port == PortSpec::Static(6121)));
    }

    #[test]
    fn env_gated_listener() {
        let spec = ListenerSpec::tcp(7077).when("CLUSTER_MODE", "true");
        let off = Container::new("spark", "spark");
        let on = Container::new("spark", "spark").with_env("CLUSTER_MODE", "true");
        assert!(!spec.enabled_for(&off));
        assert!(spec.enabled_for(&on));
        let b = ContainerBehavior::Listeners(vec![spec]);
        assert!(b.listeners_for(&off).is_empty());
        assert_eq!(b.listeners_for(&on).len(), 1);
    }

    #[test]
    fn registry_resolution_order() {
        let mut reg = BehaviorRegistry::new();
        reg.register(
            "bitnami/flink",
            ContainerBehavior::Listeners(vec![ListenerSpec::tcp(1)]),
        );
        reg.register_prefix(
            "bitnami/",
            ContainerBehavior::Listeners(vec![ListenerSpec::tcp(2)]),
        );

        // Tag-stripped exact match wins over the prefix.
        match reg.resolve("bitnami/flink:1.17") {
            ContainerBehavior::Listeners(l) => assert_eq!(l[0].port, PortSpec::Static(1)),
            _ => panic!(),
        }
        // Prefix match.
        match reg.resolve("bitnami/redis:7") {
            ContainerBehavior::Listeners(l) => assert_eq!(l[0].port, PortSpec::Static(2)),
            _ => panic!(),
        }
        // Unknown image: declared ports.
        assert_eq!(
            reg.resolve("ghcr.io/other/app"),
            &ContainerBehavior::DeclaredPorts
        );
    }

    #[test]
    fn loopback_builder() {
        let s = ListenerSpec::tcp(2222).loopback();
        assert!(s.loopback_only);
    }
}
