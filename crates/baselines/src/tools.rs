//! The eleven emulated tools.

use crate::compare::{Detection, ToolInput};
use ij_core::{MisconfigId, StaticModel};

/// What evidence a tool can observe (§4.4.1's categories).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ToolKind {
    /// Parses manifests before deployment; never sees the cluster.
    Static,
    /// Queries the API server of a running cluster; never parses charts and
    /// never inspects container runtime state.
    Runtime,
    /// Both manifests and the API server (still no socket inspection).
    Hybrid,
    /// Continuous security platform: API server + traffic recording.
    Platform,
}

/// An emulated security tool.
pub struct Tool {
    /// Tool name as in Table 3.
    pub name: &'static str,
    /// Version evaluated in the paper.
    pub version: &'static str,
    /// Observational envelope.
    pub kind: ToolKind,
    /// The tool's check suite: returns per-class detections over the
    /// evidence its envelope allows.
    check: fn(&ToolInput<'_>) -> Vec<(MisconfigId, Detection)>,
}

impl Tool {
    /// Runs the tool over a case and reports what it flags.
    pub fn run(&self, input: &ToolInput<'_>) -> Vec<(MisconfigId, Detection)> {
        (self.check)(input)
    }

    /// Classes the tool cannot observe *in principle* (the Table 3 "—"
    /// cells): static tools never see runtime deltas (M1/M2/M3/M5A) or other
    /// releases (M4\*); runtime tools never see the cluster-wide
    /// (multi-manifest) dimension. Note the paper treats M5C as statically
    /// checkable — headless services should not carry port settings at all —
    /// so it is a miss (×), not a dash, for static tools.
    pub fn not_applicable(&self, id: MisconfigId) -> bool {
        match self.kind {
            ToolKind::Static => {
                matches!(
                    id,
                    MisconfigId::M1 | MisconfigId::M2 | MisconfigId::M3 | MisconfigId::M5A
                ) || id.is_cluster_wide()
            }
            ToolKind::Runtime => id.is_cluster_wide(),
            ToolKind::Hybrid | ToolKind::Platform => false,
        }
    }
}

// Shared single-resource checks --------------------------------------------

/// Any pod template with `hostNetwork: true` (the one networking issue
/// virtually every tool ships a rule for).
fn host_network_check(statics: &StaticModel) -> bool {
    statics.units.iter().any(|u| u.host_network)
}

/// "No NetworkPolicy anywhere in the bundle/namespace" — the CIS-derived
/// check (5.3.2).
fn missing_policy_check(statics: &StaticModel) -> bool {
    statics.policies.is_empty() && !statics.units.is_empty()
}

/// KubeLinter/kube-score's dangling-service lint: a service whose selector
/// matches no workload in the same bundle.
fn dangling_service_check(statics: &StaticModel) -> bool {
    statics
        .services
        .iter()
        .any(|s| statics.units_selected_by(s).is_empty())
}

/// Kubescape's duplicate-label hint: resources sharing a full label set or
/// one service capturing several differently-labeled workloads. It reports
/// a generic "resources share labels" control, so the paper scores it as
/// *partially* finding the M4 family.
fn duplicate_label_hint(statics: &StaticModel) -> bool {
    let mut seen = std::collections::BTreeSet::new();
    let mut dup = false;
    for u in &statics.units {
        if !u.labels.is_empty() && !seen.insert((u.namespace.clone(), u.labels.to_string())) {
            dup = true;
        }
    }
    let subset = statics.services.iter().any(|s| {
        let sel = statics.units_selected_by(s);
        sel.len() >= 2
            && sel
                .iter()
                .map(|u| u.labels.to_string())
                .collect::<std::collections::BTreeSet<_>>()
                .len()
                >= 2
    });
    let multi = statics.units.iter().any(|u| {
        statics
            .services
            .iter()
            .filter(|s| {
                !s.spec.selector.is_empty()
                    && s.meta.namespace == u.namespace
                    && u.labels.contains_all(&s.spec.selector)
            })
            .count()
            >= 2
    });
    dup || subset || multi
}

// Per-tool check suites ------------------------------------------------------

fn checkov(input: &ToolInput<'_>) -> Vec<(MisconfigId, Detection)> {
    let mut out = Vec::new();
    if host_network_check(input.statics) {
        out.push((MisconfigId::M7, Detection::Found));
    }
    if missing_policy_check(input.statics) {
        out.push((MisconfigId::M6, Detection::Found));
    }
    out
}

fn kubeaudit(input: &ToolInput<'_>) -> Vec<(MisconfigId, Detection)> {
    // Same envelope as Checkov for the networking dimension.
    checkov(input)
}

fn kubelinter(input: &ToolInput<'_>) -> Vec<(MisconfigId, Detection)> {
    let mut out = Vec::new();
    if host_network_check(input.statics) {
        out.push((MisconfigId::M7, Detection::Found));
    }
    if dangling_service_check(input.statics) {
        out.push((MisconfigId::M5D, Detection::Found));
    }
    out
}

fn kube_score(input: &ToolInput<'_>) -> Vec<(MisconfigId, Detection)> {
    let mut out = Vec::new();
    if dangling_service_check(input.statics) {
        out.push((MisconfigId::M5D, Detection::Found));
    }
    if missing_policy_check(input.statics) {
        out.push((MisconfigId::M6, Detection::Found));
    }
    out
}

fn kubesec(input: &ToolInput<'_>) -> Vec<(MisconfigId, Detection)> {
    let mut out = Vec::new();
    if host_network_check(input.statics) {
        out.push((MisconfigId::M7, Detection::Found));
    }
    out
}

fn sli_kube(input: &ToolInput<'_>) -> Vec<(MisconfigId, Detection)> {
    kubesec(input)
}

fn kube_bench(input: &ToolInput<'_>) -> Vec<(MisconfigId, Detection)> {
    // Reads running pod specs from the API; CIS networking checks reduce to
    // host namespace usage.
    let mut out = Vec::new();
    if input.cluster.pods().iter().any(|p| p.pod.spec.host_network) {
        out.push((MisconfigId::M7, Detection::Found));
    }
    out
}

fn kubescape(input: &ToolInput<'_>) -> Vec<(MisconfigId, Detection)> {
    let mut out = Vec::new();
    if host_network_check(input.statics) {
        out.push((MisconfigId::M7, Detection::Found));
    }
    if missing_policy_check(input.statics) {
        out.push((MisconfigId::M6, Detection::Found));
    }
    if duplicate_label_hint(input.statics) {
        // A generic hint, not a precise collision diagnosis → partial for
        // whichever M4 sub-class the case exercises.
        for id in [MisconfigId::M4A, MisconfigId::M4B, MisconfigId::M4C] {
            out.push((id, Detection::Partial));
        }
    }
    out
}

fn trivy(input: &ToolInput<'_>) -> Vec<(MisconfigId, Detection)> {
    let mut out = Vec::new();
    if host_network_check(input.statics)
        || input.cluster.pods().iter().any(|p| p.pod.spec.host_network)
    {
        out.push((MisconfigId::M7, Detection::Found));
    }
    out
}

fn neuvector(input: &ToolInput<'_>) -> Vec<(MisconfigId, Detection)> {
    // Platforms watch API state and record traffic; they surface host
    // namespace exposure but raise no misconfiguration findings beyond it
    // (§4.4.3: "they do not make any effort in notifying the user about
    // potentially misconfigured resources").
    let mut out = Vec::new();
    if input.cluster.pods().iter().any(|p| p.pod.spec.host_network) {
        out.push((MisconfigId::M7, Detection::Found));
    }
    out
}

fn stackrox(input: &ToolInput<'_>) -> Vec<(MisconfigId, Detection)> {
    neuvector(input)
}

/// The eleven tools, Table 3 order.
pub fn all_tools() -> Vec<Tool> {
    vec![
        Tool {
            name: "Checkov",
            version: "3.2.23",
            kind: ToolKind::Static,
            check: checkov,
        },
        Tool {
            name: "Kubeaudit",
            version: "0.22.1",
            kind: ToolKind::Static,
            check: kubeaudit,
        },
        Tool {
            name: "KubeLinter",
            version: "0.6.8",
            kind: ToolKind::Static,
            check: kubelinter,
        },
        Tool {
            name: "Kube-score",
            version: "1.18.0",
            kind: ToolKind::Static,
            check: kube_score,
        },
        Tool {
            name: "Kubesec",
            version: "2.14.0",
            kind: ToolKind::Static,
            check: kubesec,
        },
        Tool {
            name: "SLI-KUBE",
            version: "N/A",
            kind: ToolKind::Static,
            check: sli_kube,
        },
        Tool {
            name: "Kube-bench",
            version: "0.7.1",
            kind: ToolKind::Runtime,
            check: kube_bench,
        },
        Tool {
            name: "Kubescape",
            version: "3.0.3",
            kind: ToolKind::Hybrid,
            check: kubescape,
        },
        Tool {
            name: "Trivy",
            version: "0.49.1",
            kind: ToolKind::Hybrid,
            check: trivy,
        },
        Tool {
            name: "NeuVector",
            version: "5.3.0",
            kind: ToolKind::Platform,
            check: neuvector,
        },
        Tool {
            name: "StackRox",
            version: "3.74.9",
            kind: ToolKind::Platform,
            check: stackrox,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eleven_tools_in_table_order() {
        let tools = all_tools();
        assert_eq!(tools.len(), 11);
        assert_eq!(tools[0].name, "Checkov");
        assert_eq!(tools[10].name, "StackRox");
    }

    #[test]
    fn not_applicable_envelopes() {
        let tools = all_tools();
        let static_tool = &tools[0];
        assert!(static_tool.not_applicable(MisconfigId::M1));
        assert!(!static_tool.not_applicable(MisconfigId::M5C));
        assert!(static_tool.not_applicable(MisconfigId::M2));
        assert!(static_tool.not_applicable(MisconfigId::M4Star));
        assert!(!static_tool.not_applicable(MisconfigId::M6));
        let runtime_tool = tools.iter().find(|t| t.kind == ToolKind::Runtime).unwrap();
        assert!(runtime_tool.not_applicable(MisconfigId::M4Star));
        assert!(!runtime_tool.not_applicable(MisconfigId::M1));
        let hybrid = tools.iter().find(|t| t.kind == ToolKind::Hybrid).unwrap();
        assert!(!hybrid.not_applicable(MisconfigId::M4Star));
    }
}
