//! # ij-bench — regenerating every table and figure of the paper
//!
//! Each experiment of the evaluation section has a function here that runs
//! the full pipeline and renders the artifact as text; the `repro` binary
//! prints them and the Criterion benches in `benches/` time them.
//!
//! | artifact | function |
//! |---|---|
//! | Table 2 (misconfiguration census) | [`table2`] |
//! | Table 3 (tool comparison) | [`table3`] |
//! | Figure 3a (top-10 by count) | [`fig3a`] |
//! | Figure 3b (top-10 by types) | [`fig3b`] |
//! | Figure 4a (distribution + concentration) | [`fig4a`] |
//! | Figure 4b (policy impact) | [`fig4b`] |
//! | §4.3.1 use-case averages | [`averages`] |
//! | defense ablation (ij-guard) | [`defense`] |
//! | ground-truth precision/recall | [`score`] |

use ij_baselines::run_comparison;
use ij_chart::Release;
use ij_cluster::{BehaviorRegistry, Cluster, ClusterConfig};
use ij_core::{Census, MisconfigId, StaticModel};
use ij_datasets::{build_app, corpus, representative_charts, CensusPipeline};
use ij_guard::{GuardAdmission, GuardPolicy, PolicySynthesizer};
use ij_model::{Container, Object, ObjectMeta, Pod, PodSpec};
use ij_probe::ReachMatrix;

/// Runs the census over the full corpus with default options (sequential,
/// so the criterion benches time the single-threaded pipeline).
pub fn full_census() -> Census {
    full_census_threaded(1)
}

/// Runs the census over the full corpus on `threads` pipeline workers. The
/// result is byte-identical for every thread count (enforced by the root
/// determinism suites); only the wall-clock changes.
pub fn full_census_threaded(threads: usize) -> Census {
    CensusPipeline::builder()
        .threads(threads)
        .build()
        .run(&corpus())
        .expect("the synthetic corpus renders and installs")
}

/// Peak resident-set size of this process in kibibytes, from the kernel's
/// `VmHWM` high-water mark — the number committed next to the corpus-scale
/// curve in `BENCH_corpus.json`. Returns `None` off Linux (or if
/// `/proc/self/status` is unreadable); callers treat that as "cannot
/// measure", not as zero.
pub fn peak_rss_kb() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
        line.split_whitespace().nth(1)?.parse().ok()
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Precision/recall of the hybrid analyzer against the corpus ground truth
/// (the measurement the original study could not make, §6.3).
pub fn score() -> String {
    let specs = corpus();
    let pipeline = CensusPipeline::builder().build();
    let mut results: Vec<(usize, Vec<ij_core::Finding>)> = Vec::new();
    for (i, app_spec) in specs.iter().enumerate() {
        let built = build_app(app_spec);
        let analysis = pipeline
            .analyze_one(&built)
            .expect("the synthetic corpus renders and installs");
        results.push((i, analysis.findings));
    }
    let report = ij_datasets::score_corpus(results.iter().map(|(i, f)| (&specs[*i], f.as_slice())));
    format!(
        "Ground-truth scoring of the hybrid analyzer over the full corpus
{}",
        report.render()
    )
}

/// Table 2: the misconfiguration census per dataset.
pub fn table2(census: &Census) -> String {
    let mut out = String::new();
    out.push_str("Table 2 — breakdown of network misconfigurations by dataset\n");
    out.push_str(&format!(
        "{:<14} {:>9} {:>5} {:>4} {:>4} {:>4} {:>4} {:>4} {:>4} {:>4} {:>4} {:>4} {:>4} {:>4} {:>4}\n",
        "Dataset", "Affected", "M1", "M2", "M3", "M4A", "M4B", "M4C", "M4*", "M5A", "M5B", "M5C",
        "M5D", "M6", "M7"
    ));
    let mut totals = [0usize; 13];
    let (mut aff, mut tot) = (0usize, 0usize);
    for row in census.table2() {
        out.push_str(&format!(
            "{:<14} {:>5}/{:<3}",
            row.dataset, row.affected, row.total_apps
        ));
        for (i, id) in MisconfigId::ALL.iter().enumerate() {
            out.push_str(&format!(" {:>4}", row.count(*id)));
            totals[i] += row.count(*id);
        }
        out.push('\n');
        aff += row.affected;
        tot += row.total_apps;
    }
    out.push_str(&format!("{:<14} {:>5}/{:<3}", "Total", aff, tot));
    for t in totals {
        out.push_str(&format!(" {:>4}", t));
    }
    out.push_str(&format!(
        "\nTotal misconfigurations: {}\n",
        census.total_misconfigurations()
    ));
    out
}

/// Table 3: the tool-comparison matrix.
pub fn table3() -> String {
    let mut out = String::new();
    out.push_str("Table 3 — misconfigurations detected by tools vs our solution\n");
    out.push_str(&format!("{:<14} {:<8} {:<9}", "Tool", "Version", "Type"));
    for id in MisconfigId::ALL {
        out.push_str(&format!(" {:>4}", id.as_str()));
    }
    out.push('\n');
    for row in run_comparison() {
        out.push_str(&format!(
            "{:<14} {:<8} {:<9}",
            row.tool, row.version, row.kind
        ));
        for id in MisconfigId::ALL {
            out.push_str(&format!(" {:>4}", row.cell(id).symbol()));
        }
        out.push('\n');
    }
    out
}

/// Figure 3a: the ten applications with the most misconfigurations, as a
/// horizontal bar chart with per-class stacking annotation.
pub fn fig3a(census: &Census) -> String {
    let mut out = String::new();
    out.push_str("Figure 3a — ten applications with the highest number of misconfigurations\n");
    for app in census.top_by_count(10) {
        out.push_str(&bar_line(
            &app.app,
            &app.dataset,
            &app.version,
            app.total(),
            app,
        ));
    }
    out
}

/// Figure 3b: the ten applications with the most distinct misconfiguration
/// types.
pub fn fig3b(census: &Census) -> String {
    let mut out = String::new();
    out.push_str("Figure 3b — ten applications with the most misconfiguration types\n");
    for app in census.top_by_types(10) {
        out.push_str(&bar_line(
            &app.app,
            &app.dataset,
            &app.version,
            app.types().len(),
            app,
        ));
    }
    out
}

fn bar_line(
    name: &str,
    dataset: &str,
    version: &str,
    magnitude: usize,
    app: &ij_core::AppReport,
) -> String {
    let classes: Vec<String> = MisconfigId::ALL
        .iter()
        .filter(|id| app.count_of(**id) > 0)
        .map(|id| format!("{}×{}", id, app.count_of(*id)))
        .collect();
    format!(
        "{:<38} {:>2} |{} {}\n",
        format!("{name} ({dataset}) {version}"),
        magnitude,
        "#".repeat(magnitude),
        classes.join(" ")
    )
}

/// Figure 4a: total misconfigurations per application (descending series)
/// plus the §4.3.1 concentration statistics.
pub fn fig4a(census: &Census) -> String {
    let dist = census.distribution();
    let mut out = String::new();
    out.push_str("Figure 4a — total misconfigurations per application (descending)\n");
    // Compact sparkline-style rendering: one bucket per line of ten apps.
    for (i, chunk) in dist.chunks(29).enumerate() {
        out.push_str(&format!(
            "apps {:>3}-{:<3} {}\n",
            i * 29 + 1,
            i * 29 + chunk.len(),
            chunk
                .iter()
                .map(|v| format!("{v:>2}"))
                .collect::<Vec<_>>()
                .join(" ")
        ));
    }
    let heavy = census.concentration(10);
    out.push_str(&format!(
        "apps with ≥10 findings: {:.1}% of apps, {:.1}% of all findings (paper: ~5% → 25%)\n",
        heavy.app_share * 100.0,
        heavy.finding_share * 100.0
    ));
    let mid_apps = dist.iter().filter(|&&t| (5..=9).contains(&t)).count();
    let mid_sum: usize = dist.iter().filter(|&&t| (5..=9).contains(&t)).sum();
    out.push_str(&format!(
        "apps with 5–9 findings: {:.1}% of apps, {:.1}% of all findings (paper: ~8% → 22%)\n",
        mid_apps as f64 / dist.len() as f64 * 100.0,
        mid_sum as f64 / census.total_misconfigurations() as f64 * 100.0
    ));
    out
}

/// Figure 4b: impact of (force-)enabling the charts' own NetworkPolicies.
pub fn fig4b() -> String {
    let rows = CensusPipeline::builder()
        .build()
        .policy_impact(&corpus())
        .expect("the synthetic corpus renders and installs");
    let mut out = String::new();
    out.push_str("Figure 4b — impact of network policies on endpoint reachability\n");
    out.push_str(&format!(
        "{:<14} {:>8} {:>9} {:>16} {:>9}\n",
        "Dataset", "Enabled", "Affected", "Pods (dynamic)", "Services"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<14} {:>8} {:>9} {:>10} ({:>2}) {:>9}\n",
            row.dataset,
            row.enabled,
            row.affected,
            row.reachable_pods,
            row.reachable_dynamic_pods,
            row.reachable_services
        ));
    }
    out
}

/// §4.3.1: average misconfigurations per application by use case.
pub fn averages(census: &Census) -> String {
    let mut out = String::new();
    out.push_str("§4.3.1 — average misconfigurations per application by use case\n");
    for (label, datasets) in [
        ("sharing", &["Banzai Cloud", "Bitnami"][..]),
        ("production", &["CNCF", "Prometheus C."][..]),
        ("internal", &["EEA", "Wikimedia"][..]),
    ] {
        out.push_str(&format!(
            "{label:<12} avg {:.2} per app, {:>5.1}% of charts affected\n",
            census.average_per_app(datasets),
            census.affected_share(datasets) * 100.0
        ));
    }
    out
}

/// Outcome of the defense ablation for one misconfiguration class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DefenseOutcome {
    /// The class under test.
    pub id: MisconfigId,
    /// The admission guard rejected the offending object at deploy time.
    pub blocked_at_admission: bool,
    /// Misconfigured endpoints reachable by an attacker before synthesis.
    pub reachable_before: usize,
    /// … and after applying synthesized NetworkPolicies.
    pub reachable_after: usize,
}

/// The defense ablation: per representative case, does the admission guard
/// block it, and does policy synthesis cut off the attack surface?
pub fn defense_outcomes() -> Vec<DefenseOutcome> {
    representative_charts()
        .into_iter()
        .map(|mut case| {
            // The representative charts carry tight enabled policies to keep
            // Table 3 cases pure; the defense ablation wants the Kubernetes
            // default posture (no policies) so synthesis has work to do.
            for spec in &mut case.apps {
                spec.plan.netpol = ij_datasets::NetpolSpec::Missing;
            }
            // Admission leg.
            let mut guarded = Cluster::new(ClusterConfig::default());
            // Strict mode: the generated charts apply workloads before their
            // services, so unmatched selectors are decidable at admission.
            let policy = GuardPolicy {
                check_unmatched_selectors: true,
                ..Default::default()
            };
            guarded.push_admission(Box::new(GuardAdmission::new(policy)));
            let mut blocked = false;
            for spec in &case.apps {
                // Built fresh and rendered exactly once: the parse-per-call
                // path is the right trade-off here (no compilation to
                // amortize).
                let built = build_app(spec);
                let rendered = built
                    .chart()
                    .render(&Release::new(&spec.name, "default"))
                    .expect("representative charts render");
                if guarded.install(&rendered).is_err() {
                    blocked = true;
                }
            }

            // Synthesis leg: unguarded install, measure attacker-reachable
            // misconfigured endpoints before/after synthesized policies.
            let mut registry = BehaviorRegistry::new();
            let builts: Vec<_> = case.apps.iter().map(build_app).collect();
            for b in &builts {
                for (image, behavior) in &b.behaviors {
                    registry.register(image.clone(), behavior.clone());
                }
            }
            let mut cluster = Cluster::new(ClusterConfig {
                nodes: 3,
                seed: 5,
                behaviors: registry,
            });
            let mut objects = Vec::new();
            for b in &builts {
                let rendered = b
                    .chart()
                    .render(&Release::new(&b.spec.name, "default"))
                    .expect("representative charts render");
                cluster.install(&rendered).expect("unguarded install");
                objects.extend(rendered.objects);
            }
            cluster
                .apply(Object::Pod(Pod::new(
                    ObjectMeta::named("attacker"),
                    PodSpec {
                        containers: vec![Container::new("sh", "attacker/recon")],
                        ..Default::default()
                    },
                )))
                .expect("unguarded apply");
            cluster.reconcile();

            let statics = StaticModel::from_objects(&objects);
            let before = reachable_misconfigured(&cluster, &statics);
            let synthesized = PolicySynthesizer::new().synthesize(&statics);
            for obj in synthesized.objects() {
                cluster.apply(obj).expect("policies admitted");
            }
            let after = reachable_misconfigured(&cluster, &statics);

            DefenseOutcome {
                id: case.id,
                blocked_at_admission: blocked,
                reachable_before: before,
                reachable_after: after,
            }
        })
        .collect()
}

/// Counts attacker-reachable endpoints that are misconfigured (undeclared
/// stable ports or dynamic ports). One [`ReachMatrix`] pass per call.
fn reachable_misconfigured(cluster: &Cluster, statics: &StaticModel) -> usize {
    let matrix = ReachMatrix::compute(cluster);
    let Some(attacker) = matrix.pod_index("default/attacker") else {
        return 0;
    };
    let mut count = 0;
    for (dst, rp) in cluster.pods().iter().enumerate() {
        let name = rp.qualified_name();
        if name.ends_with("/attacker") {
            continue;
        }
        let unit = rp.owner.clone().unwrap_or_else(|| name.clone());
        for socket in &rp.sockets {
            if socket.loopback_only {
                continue;
            }
            let declared = statics
                .unit(&unit)
                .map(|u| u.declares(socket.port, socket.protocol))
                .unwrap_or(true);
            if (socket.ephemeral || !declared)
                && matrix.connected(attacker, dst, socket.port, socket.protocol)
            {
                count += 1;
            }
        }
    }
    count
}

/// Renders the defense ablation.
pub fn defense() -> String {
    let mut out = String::new();
    out.push_str("Defense ablation — ij-guard admission + policy synthesis\n");
    out.push_str(&format!(
        "{:<6} {:>20} {:>18} {:>18}\n",
        "Class", "Blocked at admission", "Reachable before", "Reachable after"
    ));
    for o in defense_outcomes() {
        out.push_str(&format!(
            "{:<6} {:>20} {:>18} {:>18}\n",
            o.id.as_str(),
            if o.blocked_at_admission { "yes" } else { "no" },
            o.reachable_before,
            o.reachable_after
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_text_contains_totals() {
        let census = full_census();
        let text = table2(&census);
        assert!(text.contains("Total misconfigurations: 634"));
        assert!(text.contains("Banzai Cloud"));
    }

    #[test]
    fn fig3_rankings_render() {
        let census = full_census();
        let a = fig3a(&census);
        assert!(a.contains("kube-prometheus-stack"));
        let b = fig3b(&census);
        assert!(b.lines().count() >= 11);
    }

    #[test]
    fn defense_blocks_collision_classes_and_synthesis_closes_ports() {
        let outcomes = defense_outcomes();
        let by_id = |id: MisconfigId| {
            outcomes
                .iter()
                .find(|o| o.id == id)
                .unwrap_or_else(|| panic!("missing {id}"))
        };
        // The admission guard stops the statically-visible injections.
        for id in [
            MisconfigId::M4A,
            MisconfigId::M4Star,
            MisconfigId::M5B,
            MisconfigId::M5D,
            MisconfigId::M7,
        ] {
            assert!(by_id(id).blocked_at_admission, "{id} should be blocked");
        }
        // M1's undeclared port is attacker-reachable until synthesis cuts it.
        let m1 = by_id(MisconfigId::M1);
        assert!(!m1.blocked_at_admission);
        assert!(m1.reachable_before > 0);
        assert_eq!(m1.reachable_after, 0);
        // M2's dynamic ports are the residual risk policies cannot express.
        let m2 = by_id(MisconfigId::M2);
        assert!(m2.reachable_before > 0);
        assert_eq!(
            m2.reachable_after, 0,
            "synthesized deny-all covers the worker"
        );
    }
}
