//! Object metadata, labels, and label selectors.
//!
//! Labels are the glue of Kubernetes networking: services select pods by
//! label, network policies select pods by label, and — as the paper's M4
//! family shows — *colliding* labels silently rewire traffic. This module
//! implements the exact matching semantics of `metav1.LabelSelector`,
//! including set-based `matchExpressions`.

use crate::codec;
use crate::error::{Error, Result};
use ij_yaml::{Map, Value};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// An ordered label set (`key → value`).
///
/// Ordering is lexicographic by key so that label sets compare and hash
/// deterministically — collision detection depends on that.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Labels(pub BTreeMap<String, String>);

impl Labels {
    /// Creates an empty label set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a label set from `(key, value)` pairs.
    pub fn from_pairs<K: Into<String>, V: Into<String>>(
        pairs: impl IntoIterator<Item = (K, V)>,
    ) -> Self {
        Labels(
            pairs
                .into_iter()
                .map(|(k, v)| (k.into(), v.into()))
                .collect(),
        )
    }

    /// Inserts a label.
    pub fn insert(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.0.insert(key.into(), value.into());
    }

    /// Looks up a label value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.0.get(key).map(String::as_str)
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Number of labels.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Iterates `(key, value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.0.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// True when every label in `other` is present with the same value
    /// (i.e. `other ⊆ self`). This is the subset relation behind selector
    /// matching and the paper's M4C "compute unit subset collision".
    pub fn contains_all(&self, other: &Labels) -> bool {
        other
            .iter()
            .all(|(k, v)| self.get(k).is_some_and(|mine| mine == v))
    }

    /// Decodes from a YAML mapping.
    pub(crate) fn decode(map: &Map, ctx: &str) -> Result<Labels> {
        Ok(Labels(codec::string_map(map, ctx)?.into_iter().collect()))
    }

    /// Encodes to a YAML mapping.
    pub(crate) fn encode(&self) -> Value {
        let mut m = Map::with_capacity(self.0.len());
        for (k, v) in self.iter() {
            m.push_unchecked(k, Value::str(v));
        }
        Value::Map(m)
    }
}

impl fmt::Display for Labels {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (k, v) in self.iter() {
            if !first {
                f.write_str(",")?;
            }
            write!(f, "{k}={v}")?;
            first = false;
        }
        Ok(())
    }
}

impl<K: Into<String>, V: Into<String>> FromIterator<(K, V)> for Labels {
    fn from_iter<T: IntoIterator<Item = (K, V)>>(iter: T) -> Self {
        Labels::from_pairs(iter)
    }
}

/// Standard object metadata.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ObjectMeta {
    /// Object name, unique per kind within a namespace.
    pub name: String,
    /// Namespace; `default` when unspecified, as in a real cluster.
    pub namespace: String,
    /// Identifying labels.
    pub labels: Labels,
    /// Non-identifying annotations.
    pub annotations: BTreeMap<String, String>,
}

impl ObjectMeta {
    /// Creates metadata with a name in the `default` namespace.
    pub fn named(name: impl Into<String>) -> Self {
        ObjectMeta {
            name: name.into(),
            namespace: "default".to_string(),
            labels: Labels::new(),
            annotations: BTreeMap::new(),
        }
    }

    /// Builder-style label attachment.
    pub fn with_labels(mut self, labels: Labels) -> Self {
        self.labels = labels;
        self
    }

    /// Builder-style namespace override.
    pub fn in_namespace(mut self, ns: impl Into<String>) -> Self {
        self.namespace = ns.into();
        self
    }

    /// `namespace/name`, the cluster-unique handle used throughout the
    /// simulator and analyzer.
    pub fn qualified_name(&self) -> String {
        format!("{}/{}", self.namespace, self.name)
    }

    pub(crate) fn decode(map: &Map) -> Result<ObjectMeta> {
        let meta = codec::opt_map(map, "metadata", "object")?
            .ok_or_else(|| Error::malformed("missing `metadata`"))?;
        let name = codec::req_str(meta, "name", "metadata")?;
        let namespace =
            codec::opt_str(meta, "namespace", "metadata")?.unwrap_or_else(|| "default".to_string());
        let labels = match codec::opt_map(meta, "labels", "metadata")? {
            Some(m) => Labels::decode(m, "metadata.labels")?,
            None => Labels::new(),
        };
        let annotations = match codec::opt_map(meta, "annotations", "metadata")? {
            Some(m) => codec::string_map(m, "metadata.annotations")?
                .into_iter()
                .collect(),
            None => BTreeMap::new(),
        };
        Ok(ObjectMeta {
            name,
            namespace,
            labels,
            annotations,
        })
    }

    pub(crate) fn encode(&self) -> Value {
        let mut m = Map::with_capacity(4);
        m.push_unchecked("name", Value::str(&self.name));
        if self.namespace != "default" {
            m.push_unchecked("namespace", Value::str(&self.namespace));
        }
        if !self.labels.is_empty() {
            m.push_unchecked("labels", self.labels.encode());
        }
        if !self.annotations.is_empty() {
            let mut a = Map::with_capacity(self.annotations.len());
            for (k, v) in &self.annotations {
                a.push_unchecked(k.clone(), Value::str(v));
            }
            m.push_unchecked("annotations", Value::Map(a));
        }
        Value::Map(m)
    }
}

/// Operator of a set-based selector requirement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SelectorOp {
    /// Label value must be in the given set.
    In,
    /// Label value must not be in the given set (absent keys match).
    NotIn,
    /// Label key must exist.
    Exists,
    /// Label key must not exist.
    DoesNotExist,
}

/// One `matchExpressions` entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SelectorRequirement {
    /// Label key the requirement applies to.
    pub key: String,
    /// Matching operator.
    pub op: SelectorOp,
    /// Candidate values for `In` / `NotIn`.
    pub values: Vec<String>,
}

impl SelectorRequirement {
    fn matches(&self, labels: &Labels) -> bool {
        let v = labels.get(&self.key);
        match self.op {
            SelectorOp::In => v.is_some_and(|v| self.values.iter().any(|c| c == v)),
            SelectorOp::NotIn => !v.is_some_and(|v| self.values.iter().any(|c| c == v)),
            SelectorOp::Exists => v.is_some(),
            SelectorOp::DoesNotExist => v.is_none(),
        }
    }
}

/// A `metav1.LabelSelector`: the conjunction of `matchLabels` and all
/// `matchExpressions`. An *empty* selector selects everything — the footgun
/// behind over-broad NetworkPolicies.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LabelSelector {
    /// Equality requirements.
    pub match_labels: Labels,
    /// Set-based requirements.
    pub match_expressions: Vec<SelectorRequirement>,
}

impl LabelSelector {
    /// Selector matching everything (empty).
    pub fn everything() -> Self {
        Self::default()
    }

    /// Equality-only selector from pairs.
    pub fn from_labels(labels: Labels) -> Self {
        LabelSelector {
            match_labels: labels,
            ..Default::default()
        }
    }

    /// True when the selector has no requirements at all.
    pub fn is_empty(&self) -> bool {
        self.match_labels.is_empty() && self.match_expressions.is_empty()
    }

    /// Evaluates the selector against a label set.
    pub fn matches(&self, labels: &Labels) -> bool {
        labels.contains_all(&self.match_labels)
            && self.match_expressions.iter().all(|r| r.matches(labels))
    }

    pub(crate) fn decode(map: &Map, ctx: &str) -> Result<LabelSelector> {
        let match_labels = match codec::opt_map(map, "matchLabels", ctx)? {
            Some(m) => Labels::decode(m, &format!("{ctx}.matchLabels"))?,
            None => Labels::new(),
        };
        let mut match_expressions = Vec::new();
        for (i, e) in codec::opt_seq(map, "matchExpressions", ctx)?
            .iter()
            .enumerate()
        {
            let ectx = format!("{ctx}.matchExpressions[{i}]");
            let em = codec::as_map(e, &ectx)?;
            let key = codec::req_str(em, "key", &ectx)?;
            let op = match codec::req_str(em, "operator", &ectx)?.as_str() {
                "In" => SelectorOp::In,
                "NotIn" => SelectorOp::NotIn,
                "Exists" => SelectorOp::Exists,
                "DoesNotExist" => SelectorOp::DoesNotExist,
                other => {
                    return Err(Error::malformed(format!(
                        "{ectx}.operator: unknown operator `{other}`"
                    )))
                }
            };
            let values = codec::opt_seq(em, "values", &ectx)?
                .iter()
                .map(|v| v.render_scalar())
                .collect();
            match_expressions.push(SelectorRequirement { key, op, values });
        }
        Ok(LabelSelector {
            match_labels,
            match_expressions,
        })
    }

    pub(crate) fn encode(&self) -> Value {
        let mut m = Map::with_capacity(2);
        if !self.match_labels.is_empty() {
            m.push_unchecked("matchLabels", self.match_labels.encode());
        }
        if !self.match_expressions.is_empty() {
            let exprs = self
                .match_expressions
                .iter()
                .map(|r| {
                    let mut e = Map::with_capacity(3);
                    e.push_unchecked("key", Value::str(&r.key));
                    e.push_unchecked(
                        "operator",
                        Value::str(match r.op {
                            SelectorOp::In => "In",
                            SelectorOp::NotIn => "NotIn",
                            SelectorOp::Exists => "Exists",
                            SelectorOp::DoesNotExist => "DoesNotExist",
                        }),
                    );
                    if !r.values.is_empty() {
                        e.push_unchecked(
                            "values",
                            Value::Seq(r.values.iter().map(Value::str).collect()),
                        );
                    }
                    Value::Map(e)
                })
                .collect();
            m.push_unchecked("matchExpressions", Value::Seq(exprs));
        }
        Value::Map(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(pairs: &[(&str, &str)]) -> Labels {
        Labels::from_pairs(pairs.iter().copied())
    }

    #[test]
    fn contains_all_is_subset() {
        let pod = labels(&[("app", "web"), ("tier", "front")]);
        assert!(pod.contains_all(&labels(&[("app", "web")])));
        assert!(pod.contains_all(&labels(&[])));
        assert!(!pod.contains_all(&labels(&[("app", "db")])));
        assert!(!pod.contains_all(&labels(&[("app", "web"), ("x", "y")])));
    }

    #[test]
    fn empty_selector_matches_everything() {
        let sel = LabelSelector::everything();
        assert!(sel.matches(&labels(&[])));
        assert!(sel.matches(&labels(&[("a", "b")])));
    }

    #[test]
    fn match_labels_conjunction() {
        let sel = LabelSelector::from_labels(labels(&[("app", "web"), ("tier", "front")]));
        assert!(sel.matches(&labels(&[
            ("app", "web"),
            ("tier", "front"),
            ("extra", "1")
        ])));
        assert!(!sel.matches(&labels(&[("app", "web")])));
    }

    #[test]
    fn match_expressions_semantics() {
        let sel = LabelSelector {
            match_labels: Labels::new(),
            match_expressions: vec![
                SelectorRequirement {
                    key: "env".into(),
                    op: SelectorOp::In,
                    values: vec!["prod".into(), "staging".into()],
                },
                SelectorRequirement {
                    key: "canary".into(),
                    op: SelectorOp::DoesNotExist,
                    values: vec![],
                },
            ],
        };
        assert!(sel.matches(&labels(&[("env", "prod")])));
        assert!(!sel.matches(&labels(&[("env", "dev")])));
        assert!(!sel.matches(&labels(&[("env", "prod"), ("canary", "true")])));
        // NotIn matches when the key is absent.
        let notin = LabelSelector {
            match_labels: Labels::new(),
            match_expressions: vec![SelectorRequirement {
                key: "env".into(),
                op: SelectorOp::NotIn,
                values: vec!["prod".into()],
            }],
        };
        assert!(notin.matches(&labels(&[])));
        assert!(!notin.matches(&labels(&[("env", "prod")])));
    }

    #[test]
    fn selector_decode_encode_round_trip() {
        let src = "\
matchLabels:
  app: web
matchExpressions:
  - key: env
    operator: In
    values:
      - prod
";
        let v = ij_yaml::parse(src).unwrap();
        let sel = LabelSelector::decode(v.as_map().unwrap(), "selector").unwrap();
        assert!(sel.matches(&labels(&[("app", "web"), ("env", "prod")])));
        let re = LabelSelector::decode(sel.encode().as_map().unwrap(), "selector").unwrap();
        assert_eq!(sel, re);
    }

    #[test]
    fn qualified_name() {
        let m = ObjectMeta::named("web").in_namespace("monitoring");
        assert_eq!(m.qualified_name(), "monitoring/web");
    }

    #[test]
    fn labels_display_sorted() {
        let l = labels(&[("b", "2"), ("a", "1")]);
        assert_eq!(l.to_string(), "a=1,b=2");
    }
}
