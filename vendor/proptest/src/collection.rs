//! Collection strategies: `vec` and `btree_map` with a size range.

use crate::{Strategy, TestRng};
use rand::Rng;
use std::collections::BTreeMap;

/// Inclusive size bounds, converted from the range forms suites pass.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl SizeRange {
    fn draw(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.min..=self.max)
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.draw(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    BTreeMapStrategy {
        key,
        value,
        size: size.into(),
    }
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        // Duplicate keys collapse, so the map may be smaller than the draw —
        // same contract as real proptest's btree_map.
        let n = self.size.draw(rng);
        (0..n)
            .map(|_| (self.key.generate(rng), self.value.generate(rng)))
            .collect()
    }
}
