//! Decoding errors.

use std::fmt;

/// Result alias for model operations.
pub type Result<T> = std::result::Result<T, Error>;

/// An error raised while decoding a manifest into a typed object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The document is not a mapping or lacks `kind` / required fields.
    Malformed(String),
    /// A field held a value of an unexpected type.
    FieldType {
        /// Dotted path of the offending field.
        field: String,
        /// What the decoder expected to find there.
        expected: &'static str,
    },
    /// Underlying YAML error (when decoding from text).
    Yaml(ij_yaml::Error),
}

impl Error {
    pub(crate) fn malformed(msg: impl Into<String>) -> Self {
        Error::Malformed(msg.into())
    }

    pub(crate) fn field(field: impl Into<String>, expected: &'static str) -> Self {
        Error::FieldType {
            field: field.into(),
            expected,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Malformed(m) => write!(f, "malformed manifest: {m}"),
            Error::FieldType { field, expected } => {
                write!(f, "field `{field}`: expected {expected}")
            }
            Error::Yaml(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<ij_yaml::Error> for Error {
    fn from(e: ij_yaml::Error) -> Self {
        Error::Yaml(e)
    }
}
