//! The rule registry: every detection rule of §4.2.1 as a named,
//! individually enable/disable-able entry.
//!
//! The [`crate::Analyzer`] used to call each rule function in a hardcoded
//! list; it now iterates a [`RuleRegistry`] instead. That makes per-rule
//! ablations a one-liner (`analyzer.registry.disable("m7")`) and lets
//! downstream users register custom rules next to the built-in ones without
//! touching the engine.
//!
//! Two rule shapes exist, mirroring the paper's two analysis passes:
//!
//! * **application rules** run once per application over a [`RuleContext`]
//!   (static model + optional runtime report);
//! * **global rules** run once per census over the static models of every
//!   application destined for the same cluster (the M4\* pass).

use crate::finding::{Finding, MisconfigId};
use crate::model::StaticModel;
use crate::rules::{self, RuleContext};
use std::fmt;

/// Which evidence a rule consumes — the Table 3 ablation axis. Rules with
/// [`RuleScope::Runtime`] are skipped in static-only mode (and when no
/// runtime report is available); rules with [`RuleScope::Static`] are
/// skipped in runtime-only mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleScope {
    /// Evaluates the rendered configuration only.
    Static,
    /// Needs the probe's runtime observations.
    Runtime,
}

/// An application-scoped rule: evaluated once per application.
pub type AppRule = for<'a> fn(&RuleContext<'a>) -> Vec<Finding>;

/// A census-scoped rule: evaluated once over every application's statics.
pub type GlobalRule = fn(&[(String, StaticModel)]) -> Vec<Finding>;

#[derive(Clone, Copy)]
enum RuleBody {
    App(AppRule),
    Global(GlobalRule),
}

/// One registered rule.
#[derive(Clone)]
pub struct RuleEntry {
    name: &'static str,
    classes: &'static [MisconfigId],
    scope: RuleScope,
    body: RuleBody,
    enabled: bool,
}

impl RuleEntry {
    /// The registry key used by [`RuleRegistry::enable`] / [`disable`].
    ///
    /// [`disable`]: RuleRegistry::disable
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The misconfiguration classes this rule can emit.
    pub fn classes(&self) -> &'static [MisconfigId] {
        self.classes
    }

    /// Whether the rule consumes static or runtime evidence.
    pub fn scope(&self) -> RuleScope {
        self.scope
    }

    /// False when the rule has been switched off.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// True for census-scoped (cluster-wide) rules.
    pub fn is_global(&self) -> bool {
        matches!(self.body, RuleBody::Global(_))
    }

    /// Runs an application-scoped rule; global rules yield nothing here.
    pub fn run_app(&self, ctx: &RuleContext<'_>) -> Vec<Finding> {
        match self.body {
            RuleBody::App(f) => f(ctx),
            RuleBody::Global(_) => Vec::new(),
        }
    }

    /// Runs a census-scoped rule; application rules yield nothing here.
    pub fn run_global(&self, apps: &[(String, StaticModel)]) -> Vec<Finding> {
        match self.body {
            RuleBody::App(_) => Vec::new(),
            RuleBody::Global(f) => f(apps),
        }
    }
}

impl fmt::Debug for RuleEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RuleEntry")
            .field("name", &self.name)
            .field("classes", &self.classes)
            .field("scope", &self.scope)
            .field("global", &self.is_global())
            .field("enabled", &self.enabled)
            .finish()
    }
}

/// The ordered table of rules an [`crate::Analyzer`] evaluates.
///
/// Entry order is the evaluation order; findings are canonically re-sorted
/// afterwards, so order only matters for reproducible side-effect-free
/// iteration. Names are unique: registering a name twice replaces the
/// earlier entry in place (same position, new body), so a custom rule can
/// shadow a built-in one.
#[derive(Debug, Clone)]
pub struct RuleRegistry {
    entries: Vec<RuleEntry>,
}

impl Default for RuleRegistry {
    fn default() -> Self {
        RuleRegistry::standard()
    }
}

impl RuleRegistry {
    /// A registry with no rules; combine with the `register_*` methods to
    /// build a custom rule set from scratch.
    pub fn empty() -> Self {
        RuleRegistry {
            entries: Vec::new(),
        }
    }

    /// The paper's full rule set (Table 1), every entry enabled.
    pub fn standard() -> Self {
        use MisconfigId as M;
        let mut reg = RuleRegistry::empty();
        reg.register_app_rule(
            "m1",
            &[M::M1],
            RuleScope::Runtime,
            rules::m1_undeclared_open_ports,
        );
        reg.register_app_rule("m2", &[M::M2], RuleScope::Runtime, rules::m2_dynamic_ports);
        reg.register_app_rule(
            "m3",
            &[M::M3],
            RuleScope::Runtime,
            rules::m3_declared_not_open,
        );
        reg.register_app_rule(
            "m4a",
            &[M::M4A],
            RuleScope::Static,
            rules::m4a_unit_collisions,
        );
        reg.register_app_rule(
            "m4b",
            &[M::M4B],
            RuleScope::Static,
            rules::m4b_service_collisions,
        );
        reg.register_app_rule(
            "m4c",
            &[M::M4C],
            RuleScope::Static,
            rules::m4c_subset_collisions,
        );
        reg.register_app_rule(
            "m5",
            &[M::M5A, M::M5B, M::M5C, M::M5D],
            RuleScope::Static,
            rules::m5_service_references,
        );
        reg.register_app_rule(
            "m6",
            &[M::M6],
            RuleScope::Static,
            rules::m6_missing_policies,
        );
        reg.register_app_rule("m7", &[M::M7], RuleScope::Static, rules::m7_host_network);
        reg.register_global_rule("m4star", &[M::M4Star], rules::m4_global_collisions);
        reg
    }

    /// Registers (or replaces) an application-scoped rule.
    pub fn register_app_rule(
        &mut self,
        name: &'static str,
        classes: &'static [MisconfigId],
        scope: RuleScope,
        rule: AppRule,
    ) -> &mut Self {
        self.insert(RuleEntry {
            name,
            classes,
            scope,
            body: RuleBody::App(rule),
            enabled: true,
        })
    }

    /// Registers (or replaces) a census-scoped rule. Global rules always
    /// consume static evidence only, so their scope is [`RuleScope::Static`].
    pub fn register_global_rule(
        &mut self,
        name: &'static str,
        classes: &'static [MisconfigId],
        rule: GlobalRule,
    ) -> &mut Self {
        self.insert(RuleEntry {
            name,
            classes,
            scope: RuleScope::Static,
            body: RuleBody::Global(rule),
            enabled: true,
        })
    }

    fn insert(&mut self, entry: RuleEntry) -> &mut Self {
        match self.entries.iter_mut().find(|e| e.name == entry.name) {
            Some(existing) => *existing = entry,
            None => self.entries.push(entry),
        }
        self
    }

    /// Every entry, in evaluation order.
    pub fn entries(&self) -> &[RuleEntry] {
        &self.entries
    }

    /// The registered names, in evaluation order.
    pub fn names(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.entries.iter().map(|e| e.name)
    }

    /// Looks an entry up by name.
    pub fn get(&self, name: &str) -> Option<&RuleEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// True when `name` is registered and enabled.
    pub fn is_enabled(&self, name: &str) -> bool {
        self.get(name).is_some_and(RuleEntry::is_enabled)
    }

    /// Switches one rule on or off. Returns `false` when no rule of that
    /// name is registered (the registry is unchanged).
    pub fn set_enabled(&mut self, name: &str, enabled: bool) -> bool {
        match self.entries.iter_mut().find(|e| e.name == name) {
            Some(e) => {
                e.enabled = enabled;
                true
            }
            None => false,
        }
    }

    /// Enables one rule; `false` when the name is unknown.
    pub fn enable(&mut self, name: &str) -> bool {
        self.set_enabled(name, true)
    }

    /// Disables one rule; `false` when the name is unknown.
    pub fn disable(&mut self, name: &str) -> bool {
        self.set_enabled(name, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_registry_covers_every_class() {
        let reg = RuleRegistry::standard();
        let covered: std::collections::BTreeSet<MisconfigId> = reg
            .entries()
            .iter()
            .flat_map(|e| e.classes().iter().copied())
            .collect();
        for id in MisconfigId::ALL {
            assert!(covered.contains(&id), "no rule emits {id}");
        }
    }

    #[test]
    fn enable_disable_round_trip() {
        let mut reg = RuleRegistry::standard();
        assert!(reg.is_enabled("m7"));
        assert!(reg.disable("m7"));
        assert!(!reg.is_enabled("m7"));
        assert!(reg.enable("m7"));
        assert!(reg.is_enabled("m7"));
        assert!(!reg.disable("no-such-rule"));
    }

    #[test]
    fn registering_same_name_replaces_in_place() {
        fn nothing(_: &RuleContext<'_>) -> Vec<Finding> {
            Vec::new()
        }
        let mut reg = RuleRegistry::standard();
        let before: Vec<&str> = reg.names().collect();
        reg.register_app_rule("m7", &[], RuleScope::Static, nothing);
        let after: Vec<&str> = reg.names().collect();
        assert_eq!(before, after, "replacement must not reorder entries");
        assert!(reg.get("m7").unwrap().classes().is_empty());
    }

    #[test]
    fn global_entry_is_marked_global() {
        let reg = RuleRegistry::standard();
        let star = reg.get("m4star").expect("registered");
        assert!(star.is_global());
        assert!(!reg.get("m1").unwrap().is_global());
        // Running a global rule as an app rule (and vice versa) is a no-op.
        assert!(star
            .run_app(&RuleContext {
                app: "x",
                statics: &StaticModel::default(),
                runtime: None,
                ownership: &[],
                chart_defines_policies: false,
            })
            .is_empty());
        assert!(reg.get("m1").unwrap().run_global(&[]).is_empty());
    }
}
