//! Connectivity visualization — the paper's future-work direction
//! ("visualization and monitoring tools … explicitly supporting
//! network-related metrics and providing proactive advice").
//!
//! Renders the cluster's *effective* connectivity as a Graphviz DOT digraph:
//! one node per pod (host-network pods marked), one edge per allowed
//! `src → dst:port` path, with undeclared/dynamic destination ports
//! highlighted so the dangerous edges stand out.

use crate::matrix::ReachMatrix;
use ij_cluster::Cluster;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Renders the allowed pod-to-pod connectivity as a DOT digraph.
///
/// Edges carry the destination port; edges to sockets whose port is
/// undeclared (not among the pod's declared container ports) or ephemeral
/// are drawn red — those are the surfaces M1/M2 describe.
pub fn connectivity_dot(cluster: &Cluster) -> String {
    let mut out = String::from("digraph cluster_connectivity {\n");
    out.push_str("  rankdir=LR;\n  node [shape=box, fontsize=10];\n");

    let mut names: BTreeSet<String> = BTreeSet::new();
    for rp in cluster.pods() {
        names.insert(rp.qualified_name());
        let label = if rp.pod.spec.host_network {
            format!("{} [hostNetwork]", rp.qualified_name())
        } else {
            rp.qualified_name()
        };
        let _ = writeln!(
            out,
            "  \"{}\" [label=\"{}\\n{}\"{}];",
            rp.qualified_name(),
            label,
            rp.ip,
            if rp.pod.spec.host_network {
                ", color=orange"
            } else {
                ""
            }
        );
    }

    // One matrix pass answers every (src, dst, socket) edge query.
    let matrix = ReachMatrix::compute(cluster);
    for (src_idx, src) in cluster.pods().iter().enumerate() {
        for (dst_idx, dst) in cluster.pods().iter().enumerate() {
            if src_idx == dst_idx {
                continue;
            }
            for socket in &dst.sockets {
                if socket.loopback_only {
                    continue;
                }
                if !matrix.connected(src_idx, dst_idx, socket.port, socket.protocol) {
                    continue;
                }
                let declared = dst
                    .pod
                    .declared_ports()
                    .any(|(_, p)| p.container_port == socket.port && p.protocol == socket.protocol);
                let risky = socket.ephemeral || !declared;
                let _ = writeln!(
                    out,
                    "  \"{}\" -> \"{}\" [label=\"{}/{}\"{}];",
                    src.qualified_name(),
                    dst.qualified_name(),
                    socket.port,
                    socket.protocol,
                    if risky {
                        ", color=red, penwidth=2"
                    } else {
                        ", color=gray50"
                    }
                );
            }
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ij_cluster::{BehaviorRegistry, Cluster, ClusterConfig, ContainerBehavior, ListenerSpec};
    use ij_model::{
        Container, ContainerPort, LabelSelector, Labels, NetworkPolicy, Object, ObjectMeta, Pod,
        PodSpec,
    };

    fn demo_cluster() -> Cluster {
        let mut behaviors = BehaviorRegistry::new();
        behaviors.register(
            "img/web",
            ContainerBehavior::Listeners(vec![ListenerSpec::tcp(8080), ListenerSpec::tcp(9999)]),
        );
        let mut cluster = Cluster::new(ClusterConfig {
            nodes: 2,
            seed: 6,
            behaviors,
        });
        cluster
            .apply(Object::Pod(Pod::new(
                ObjectMeta::named("web").with_labels(Labels::from_pairs([("app", "web")])),
                PodSpec {
                    containers: vec![
                        Container::new("web", "img/web").with_ports(vec![ContainerPort::tcp(8080)])
                    ],
                    ..Default::default()
                },
            )))
            .unwrap();
        cluster
            .apply(Object::Pod(Pod::new(
                ObjectMeta::named("client"),
                PodSpec {
                    containers: vec![Container::new("c", "img/client")],
                    ..Default::default()
                },
            )))
            .unwrap();
        cluster.reconcile();
        cluster
    }

    #[test]
    fn dot_contains_nodes_and_edges() {
        let cluster = demo_cluster();
        let dot = connectivity_dot(&cluster);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("\"default/web\""));
        assert!(dot.contains("\"default/client\""));
        // Declared port: gray edge; undeclared 9999: red edge.
        assert!(dot.contains("label=\"8080/TCP\", color=gray50"));
        assert!(dot.contains("label=\"9999/TCP\", color=red"));
    }

    #[test]
    fn policies_remove_edges() {
        let mut cluster = demo_cluster();
        cluster
            .apply(Object::NetworkPolicy(NetworkPolicy::deny_all_ingress(
                ObjectMeta::named("deny"),
                LabelSelector::from_labels(Labels::from_pairs([("app", "web")])),
            )))
            .unwrap();
        let dot = connectivity_dot(&cluster);
        assert!(
            !dot.contains("-> \"default/web\""),
            "no edges into the locked pod:\n{dot}"
        );
    }
}
