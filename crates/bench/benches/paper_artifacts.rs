//! Criterion benches, one per paper artifact: each bench times the full
//! pipeline that regenerates the corresponding table or figure and prints
//! the artifact once so `cargo bench` output doubles as a reproduction log.

use criterion::{criterion_group, criterion_main, Criterion};
use ij_bench::{averages, defense, fig3a, fig3b, fig4a, fig4b, full_census, table2, table3};
use std::hint::black_box;

fn bench_table2_census(c: &mut Criterion) {
    let census = full_census();
    println!("{}", table2(&census));
    let mut group = c.benchmark_group("paper");
    group.sample_size(10);
    group.bench_function("table2_census", |b| {
        b.iter(|| black_box(full_census().total_misconfigurations()))
    });
    group.finish();
}

fn bench_table3_tools(c: &mut Criterion) {
    println!("{}", table3());
    let mut group = c.benchmark_group("paper");
    group.sample_size(10);
    group.bench_function("table3_tools", |b| {
        b.iter(|| black_box(ij_baselines::run_comparison().len()))
    });
    group.finish();
}

fn bench_fig3_rankings(c: &mut Criterion) {
    let census = full_census();
    println!("{}", fig3a(&census));
    println!("{}", fig3b(&census));
    let mut group = c.benchmark_group("paper");
    group.bench_function("fig3_rankings", |b| {
        b.iter(|| {
            let a = census.top_by_count(10).len();
            let t = census.top_by_types(10).len();
            black_box(a + t)
        })
    });
    group.finish();
}

fn bench_fig4a_distribution(c: &mut Criterion) {
    let census = full_census();
    println!("{}", fig4a(&census));
    println!("{}", averages(&census));
    let mut group = c.benchmark_group("paper");
    group.bench_function("fig4a_distribution", |b| {
        b.iter(|| black_box(census.distribution().len() + census.concentration(10).threshold))
    });
    group.finish();
}

fn bench_fig4b_policy_impact(c: &mut Criterion) {
    println!("{}", fig4b());
    let mut group = c.benchmark_group("paper");
    group.sample_size(10);
    let pipeline = ij_datasets::CensusPipeline::builder().build();
    group.bench_function("fig4b_policy_impact", |b| {
        b.iter(|| {
            black_box(
                pipeline
                    .policy_impact(&ij_datasets::corpus())
                    .expect("policy study runs")
                    .len(),
            )
        })
    });
    group.finish();
}

fn bench_defense_ablation(c: &mut Criterion) {
    println!("{}", defense());
    let mut group = c.benchmark_group("paper");
    group.sample_size(10);
    group.bench_function("defense_ablation", |b| {
        b.iter(|| black_box(ij_bench::defense_outcomes().len()))
    });
    group.finish();
}

criterion_group!(
    artifacts,
    bench_table2_census,
    bench_table3_tools,
    bench_fig3_rankings,
    bench_fig4a_distribution,
    bench_fig4b_policy_impact,
    bench_defense_ablation
);
criterion_main!(artifacts);
