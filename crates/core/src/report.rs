//! Aggregation of findings into the paper's tables and figures.

use crate::finding::{Finding, MisconfigId};
use std::collections::{BTreeMap, BTreeSet};

/// All findings for one application, tagged with its dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppReport {
    /// Application (chart) name.
    pub app: String,
    /// Dataset / organization the chart belongs to.
    pub dataset: String,
    /// Chart version string (cosmetic, for figure labels).
    pub version: String,
    /// Findings of the per-app and cluster-wide passes.
    pub findings: Vec<Finding>,
}

impl AppReport {
    /// Total misconfiguration count.
    pub fn total(&self) -> usize {
        self.findings.len()
    }

    /// Distinct misconfiguration types present.
    pub fn types(&self) -> BTreeSet<MisconfigId> {
        self.findings.iter().map(|f| f.id).collect()
    }

    /// Count of one class.
    pub fn count_of(&self, id: MisconfigId) -> usize {
        self.findings.iter().filter(|f| f.id == id).count()
    }

    /// True when any finding exists.
    pub fn is_affected(&self) -> bool {
        !self.findings.is_empty()
    }
}

/// One row of Table 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetRow {
    /// Dataset name.
    pub dataset: String,
    /// Applications with ≥1 finding.
    pub affected: usize,
    /// Applications analyzed.
    pub total_apps: usize,
    /// Misconfiguration counts per class.
    pub counts: BTreeMap<MisconfigId, usize>,
}

impl DatasetRow {
    /// Total findings in the row.
    pub fn total(&self) -> usize {
        self.counts.values().sum()
    }

    /// Count for one class (0 when absent).
    pub fn count(&self, id: MisconfigId) -> usize {
        self.counts.get(&id).copied().unwrap_or(0)
    }
}

/// The complete evaluation census (the input to Table 2 and Figures 3–4).
#[derive(Debug, Clone, Default)]
pub struct Census {
    /// Per-application reports.
    pub apps: Vec<AppReport>,
}

impl Census {
    /// Dataset names in first-appearance order.
    pub fn datasets(&self) -> Vec<String> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for a in &self.apps {
            if seen.insert(a.dataset.clone()) {
                out.push(a.dataset.clone());
            }
        }
        out
    }

    /// Builds the Table 2 row for one dataset.
    pub fn dataset_row(&self, dataset: &str) -> DatasetRow {
        let apps: Vec<&AppReport> = self.apps.iter().filter(|a| a.dataset == dataset).collect();
        let mut counts: BTreeMap<MisconfigId, usize> = BTreeMap::new();
        for a in &apps {
            for f in &a.findings {
                *counts.entry(f.id).or_default() += 1;
            }
        }
        DatasetRow {
            dataset: dataset.to_string(),
            affected: apps.iter().filter(|a| a.is_affected()).count(),
            total_apps: apps.len(),
            counts,
        }
    }

    /// All Table 2 rows plus the implicit total row.
    pub fn table2(&self) -> Vec<DatasetRow> {
        self.datasets()
            .iter()
            .map(|d| self.dataset_row(d))
            .collect()
    }

    /// Grand total of misconfigurations (the paper's 634).
    pub fn total_misconfigurations(&self) -> usize {
        self.apps.iter().map(AppReport::total).sum()
    }

    /// Applications affected / total (the paper's 259 / 287).
    pub fn affected_apps(&self) -> (usize, usize) {
        (
            self.apps.iter().filter(|a| a.is_affected()).count(),
            self.apps.len(),
        )
    }

    /// Figure 3a: the `n` applications with the most misconfigurations,
    /// descending (ties broken by name for determinism).
    pub fn top_by_count(&self, n: usize) -> Vec<&AppReport> {
        let mut apps: Vec<&AppReport> = self.apps.iter().collect();
        apps.sort_by(|a, b| b.total().cmp(&a.total()).then(a.app.cmp(&b.app)));
        apps.truncate(n);
        apps
    }

    /// Figure 3b: the `n` applications with the most *distinct*
    /// misconfiguration types.
    pub fn top_by_types(&self, n: usize) -> Vec<&AppReport> {
        let mut apps: Vec<&AppReport> = self.apps.iter().collect();
        apps.sort_by(|a, b| {
            b.types()
                .len()
                .cmp(&a.types().len())
                .then(b.total().cmp(&a.total()))
                .then(a.app.cmp(&b.app))
        });
        apps.truncate(n);
        apps
    }

    /// Figure 4a: per-application totals, descending.
    pub fn distribution(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.apps.iter().map(AppReport::total).collect();
        v.sort_unstable_by(|a, b| b.cmp(a));
        v
    }

    /// The concentration statistics quoted in §4.3.1: the share of
    /// applications at or above `threshold` findings and the share of all
    /// findings they account for.
    pub fn concentration(&self, threshold: usize) -> ConcentrationStats {
        let total = self.total_misconfigurations().max(1);
        let heavy: Vec<usize> = self
            .apps
            .iter()
            .map(AppReport::total)
            .filter(|&t| t >= threshold)
            .collect();
        ConcentrationStats {
            threshold,
            app_share: heavy.len() as f64 / self.apps.len().max(1) as f64,
            finding_share: heavy.iter().sum::<usize>() as f64 / total as f64,
        }
    }

    /// Average misconfigurations per application across the given datasets
    /// (the sharing 3.35 / production 4.44 / internal 1.11 comparison).
    pub fn average_per_app(&self, datasets: &[&str]) -> f64 {
        let apps: Vec<&AppReport> = self
            .apps
            .iter()
            .filter(|a| datasets.contains(&a.dataset.as_str()))
            .collect();
        if apps.is_empty() {
            return 0.0;
        }
        apps.iter().map(|a| a.total()).sum::<usize>() as f64 / apps.len() as f64
    }

    /// Share of applications affected across the given datasets.
    pub fn affected_share(&self, datasets: &[&str]) -> f64 {
        let apps: Vec<&AppReport> = self
            .apps
            .iter()
            .filter(|a| datasets.contains(&a.dataset.as_str()))
            .collect();
        if apps.is_empty() {
            return 0.0;
        }
        apps.iter().filter(|a| a.is_affected()).count() as f64 / apps.len() as f64
    }
}

/// Output of [`Census::concentration`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConcentrationStats {
    /// Findings-per-app threshold.
    pub threshold: usize,
    /// Fraction of applications at/above the threshold.
    pub app_share: f64,
    /// Fraction of all findings those applications hold.
    pub finding_share: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(app: &str, dataset: &str, ids: &[MisconfigId]) -> AppReport {
        AppReport {
            app: app.to_string(),
            dataset: dataset.to_string(),
            version: "1.0.0".to_string(),
            findings: ids
                .iter()
                .map(|&id| Finding::new(id, app, format!("default/{app}"), "test"))
                .collect(),
        }
    }

    fn census() -> Census {
        Census {
            apps: vec![
                report(
                    "a",
                    "d1",
                    &[MisconfigId::M1, MisconfigId::M1, MisconfigId::M6],
                ),
                report("b", "d1", &[]),
                report(
                    "c",
                    "d2",
                    &[MisconfigId::M4A, MisconfigId::M6, MisconfigId::M7],
                ),
                report(
                    "d",
                    "d2",
                    &[
                        MisconfigId::M1,
                        MisconfigId::M2,
                        MisconfigId::M3,
                        MisconfigId::M5A,
                        MisconfigId::M6,
                    ],
                ),
            ],
        }
    }

    #[test]
    fn table_rows_count_by_class() {
        let c = census();
        let row = c.dataset_row("d1");
        assert_eq!(row.affected, 1);
        assert_eq!(row.total_apps, 2);
        assert_eq!(row.count(MisconfigId::M1), 2);
        assert_eq!(row.count(MisconfigId::M6), 1);
        assert_eq!(row.count(MisconfigId::M7), 0);
        assert_eq!(row.total(), 3);
        assert_eq!(c.total_misconfigurations(), 11);
        assert_eq!(c.affected_apps(), (3, 4));
    }

    #[test]
    fn rankings() {
        let c = census();
        let by_count = c.top_by_count(2);
        assert_eq!(by_count[0].app, "d");
        assert_eq!(by_count[1].app, "a");
        let by_types = c.top_by_types(1);
        assert_eq!(by_types[0].app, "d"); // five distinct types
        assert_eq!(by_types[0].types().len(), 5);
    }

    #[test]
    fn distribution_and_concentration() {
        let c = census();
        assert_eq!(c.distribution(), vec![5, 3, 3, 0]);
        let stats = c.concentration(5);
        assert!((stats.app_share - 0.25).abs() < 1e-9);
        assert!((stats.finding_share - 5.0 / 11.0).abs() < 1e-9);
    }

    #[test]
    fn averages_by_group() {
        let c = census();
        assert!((c.average_per_app(&["d1"]) - 1.5).abs() < 1e-9);
        assert!((c.average_per_app(&["d2"]) - 4.0).abs() < 1e-9);
        assert!((c.affected_share(&["d1"]) - 0.5).abs() < 1e-9);
        assert_eq!(c.average_per_app(&["nope"]), 0.0);
    }

    #[test]
    fn datasets_in_first_appearance_order() {
        assert_eq!(
            census().datasets(),
            vec!["d1".to_string(), "d2".to_string()]
        );
    }
}
