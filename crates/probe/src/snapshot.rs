//! Socket snapshots and the double-run analyzer.

use crate::baseline::HostBaseline;
use crate::report::{PodRuntime, RuntimeReport};
use ij_cluster::Cluster;
use ij_model::Protocol;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// The ephemeral port range reserved by the host OS (§2.1.1).
pub const EPHEMERAL_RANGE: std::ops::RangeInclusive<u16> = 32768..=60999;

/// A socket as seen from the cluster network (loopback-only listeners are
/// invisible to a network-side probe).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ObservedSocket {
    /// Port number.
    pub port: u16,
    /// Transport protocol.
    pub protocol: Protocol,
}

impl ObservedSocket {
    /// TCP observation.
    pub fn tcp(port: u16) -> Self {
        ObservedSocket {
            port,
            protocol: Protocol::Tcp,
        }
    }

    /// UDP observation.
    pub fn udp(port: u16) -> Self {
        ObservedSocket {
            port,
            protocol: Protocol::Udp,
        }
    }

    /// True when the port falls into the OS ephemeral range.
    pub fn in_ephemeral_range(&self) -> bool {
        EPHEMERAL_RANGE.contains(&self.port)
    }
}

/// One observation pass over every pod in the cluster.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Pod qualified name → observed sockets (sorted, deduplicated).
    pub pods: BTreeMap<String, Vec<ObservedSocket>>,
}

/// Probe configuration.
#[derive(Debug, Clone)]
pub struct ProbeConfig {
    /// Probability that a pod's snapshot contains one spurious UDP port —
    /// the §5.1.2 measurement pathology. `0.0` disables injection.
    pub udp_noise_rate: f64,
    /// Apply the flakiness filter: drop ephemeral-range UDP ports that
    /// appear in only one of the two runs.
    pub filter_udp_flakiness: bool,
    /// Take two snapshots around a pod restart (the §4.2.2 double-run that
    /// detects M2). With `false`, a single snapshot is taken and dynamic
    /// ports are indistinguishable from stable ones.
    pub double_run: bool,
    /// Seed for the noise generator.
    pub seed: u64,
}

impl Default for ProbeConfig {
    fn default() -> Self {
        ProbeConfig {
            udp_noise_rate: 0.0,
            filter_udp_flakiness: true,
            double_run: true,
            seed: 1,
        }
    }
}

/// Runs the runtime-analysis methodology against a cluster.
#[derive(Debug, Clone, Default)]
pub struct RuntimeAnalyzer {
    /// Probe configuration.
    pub config: ProbeConfig,
}

impl RuntimeAnalyzer {
    /// Creates an analyzer with the given configuration.
    pub fn new(config: ProbeConfig) -> Self {
        RuntimeAnalyzer { config }
    }

    /// Captures a single snapshot (with noise injection, baseline
    /// subtraction, and loopback filtering applied).
    pub fn snapshot(
        &self,
        cluster: &Cluster,
        baseline: &HostBaseline,
        noise_rng: &mut StdRng,
    ) -> Snapshot {
        let mut pods = BTreeMap::new();
        for rp in cluster.pods() {
            let mut observed = self.pod_sockets(cluster, baseline, rp);
            if self.config.udp_noise_rate > 0.0
                && noise_rng.gen_bool(self.config.udp_noise_rate.clamp(0.0, 1.0))
            {
                observed.push(ObservedSocket::udp(
                    noise_rng.gen_range(*EPHEMERAL_RANGE.start()..=*EPHEMERAL_RANGE.end()),
                ));
            }
            observed.sort();
            observed.dedup();
            pods.insert(rp.qualified_name(), observed);
        }
        Snapshot { pods }
    }

    /// What the network-side probe sees for one pod: its cluster-reachable
    /// sockets, or the baseline-subtracted host namespace for hostNetwork
    /// pods.
    fn pod_sockets(
        &self,
        cluster: &Cluster,
        baseline: &HostBaseline,
        rp: &ij_cluster::RunningPod,
    ) -> Vec<ObservedSocket> {
        if rp.pod.spec.host_network {
            // The probe sees the whole host namespace; subtract what the
            // node held before the application was installed.
            cluster
                .host_sockets(&rp.node)
                .into_iter()
                .filter(|(p, proto, _)| !baseline.holds(&rp.node, *p, *proto))
                .map(|(port, protocol, _)| ObservedSocket { port, protocol })
                .collect()
        } else {
            rp.sockets
                .iter()
                .filter(|s| !s.loopback_only)
                .map(|s| ObservedSocket {
                    port: s.port,
                    protocol: s.protocol,
                })
                .collect()
        }
    }

    /// A non-mutating observation pass for continuous audits: one snapshot,
    /// every observed port classified stable — the `double_run: false`
    /// shape, since without a restart dynamic ports are indistinguishable.
    ///
    /// Unlike [`RuntimeAnalyzer::analyze`] (which restarts pods and draws
    /// noise from one sequential generator), noise here comes from a
    /// per-pod generator seeded by `(config.seed, pod name)`. Each pod's
    /// observation is therefore a pure function of that pod's own state:
    /// installing or removing *other* pods cannot shift the noise sequence.
    /// That independence is what lets an incremental auditor reuse
    /// unchanged applications' runtime findings verbatim and still agree
    /// byte-for-byte with a full recompute.
    pub fn observe(&self, cluster: &Cluster, baseline: &HostBaseline) -> RuntimeReport {
        let mut pods = BTreeMap::new();
        for rp in cluster.pods() {
            let name = rp.qualified_name();
            let mut observed = self.pod_sockets(cluster, baseline, rp);
            if self.config.udp_noise_rate > 0.0 {
                let mut rng = StdRng::seed_from_u64(per_pod_seed(self.config.seed, &name));
                if rng.gen_bool(self.config.udp_noise_rate.clamp(0.0, 1.0)) {
                    observed.push(ObservedSocket::udp(
                        rng.gen_range(*EPHEMERAL_RANGE.start()..=*EPHEMERAL_RANGE.end()),
                    ));
                }
            }
            observed.sort();
            observed.dedup();
            pods.insert(
                name,
                PodRuntime {
                    stable: observed,
                    dynamic: Vec::new(),
                },
            );
        }
        RuntimeReport {
            pods,
            udp_noise_filtered: 0,
        }
    }

    /// Full analysis: snapshot, restart, snapshot again (when `double_run`),
    /// then merge into a [`RuntimeReport`] separating stable from dynamic
    /// ports and filtering UDP flakiness.
    pub fn analyze(&self, cluster: &mut Cluster, baseline: &HostBaseline) -> RuntimeReport {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let first = self.snapshot(cluster, baseline, &mut rng);
        if !self.config.double_run {
            let pods = first
                .pods
                .into_iter()
                .map(|(name, sockets)| {
                    (
                        name,
                        PodRuntime {
                            stable: sockets,
                            dynamic: Vec::new(),
                        },
                    )
                })
                .collect();
            return RuntimeReport {
                pods,
                udp_noise_filtered: 0,
            };
        }
        cluster.restart_pods();
        let second = self.snapshot(cluster, baseline, &mut rng);
        self.merge(first, second)
    }

    /// Combines two snapshots: ports in both runs are stable; ports in only
    /// one run are dynamic if in the ephemeral range (UDP singletons get
    /// dropped as flakiness when the filter is on).
    fn merge(&self, first: Snapshot, second: Snapshot) -> RuntimeReport {
        let mut pods = BTreeMap::new();
        let mut filtered = 0usize;
        let names: std::collections::BTreeSet<&String> =
            first.pods.keys().chain(second.pods.keys()).collect();
        for name in names {
            let empty = Vec::new();
            let a = first.pods.get(name).unwrap_or(&empty);
            let b = second.pods.get(name).unwrap_or(&empty);
            let mut stable = Vec::new();
            let mut dynamic = Vec::new();
            for s in a.iter().chain(b.iter()) {
                if stable.contains(s) || dynamic.contains(s) {
                    continue;
                }
                let in_both = a.contains(s) && b.contains(s);
                if in_both {
                    stable.push(*s);
                } else if s.in_ephemeral_range() {
                    if self.config.filter_udp_flakiness && s.protocol == Protocol::Udp {
                        // §5.1.2: single-occurrence ephemeral UDP ports are
                        // probe artifacts, not application listeners.
                        filtered += 1;
                    } else {
                        dynamic.push(*s);
                    }
                } else {
                    // A non-ephemeral port present in exactly one run: the
                    // listener raced the probe. Keep it as stable — it is a
                    // real port of the application.
                    stable.push(*s);
                }
            }
            stable.sort();
            dynamic.sort();
            pods.insert(name.clone(), PodRuntime { stable, dynamic });
        }
        RuntimeReport {
            pods,
            udp_noise_filtered: filtered,
        }
    }
}

/// Mixes the configured probe seed with a pod name (FNV-1a) so every pod
/// owns an independent noise stream.
fn per_pod_seed(seed: u64, pod: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for b in pod.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use ij_cluster::{BehaviorRegistry, Cluster, ClusterConfig, ContainerBehavior, ListenerSpec};
    use ij_model::{Container, ContainerPort, Labels, Object, ObjectMeta, Pod, PodSpec};

    fn cluster_with(behaviors: BehaviorRegistry, host_network: bool) -> Cluster {
        let mut cluster = Cluster::new(ClusterConfig {
            nodes: 1,
            seed: 3,
            behaviors,
        });
        let pod = Pod::new(
            ObjectMeta::named("app").with_labels(Labels::from_pairs([("app", "x")])),
            PodSpec {
                containers: vec![
                    Container::new("c", "img/app").with_ports(vec![ContainerPort::tcp(8080)])
                ],
                host_network,
                node_name: None,
            },
        );
        cluster.apply(Object::Pod(pod)).unwrap();
        cluster.reconcile();
        cluster
    }

    #[test]
    fn stable_ports_survive_double_run() {
        let mut cluster = cluster_with(BehaviorRegistry::new(), false);
        let baseline = HostBaseline::capture(&cluster);
        let report = RuntimeAnalyzer::default().analyze(&mut cluster, &baseline);
        let rt = &report.pods["default/app"];
        assert_eq!(rt.stable, vec![ObservedSocket::tcp(8080)]);
        assert!(rt.dynamic.is_empty());
    }

    #[test]
    fn dynamic_ports_detected_by_double_run() {
        let mut behaviors = BehaviorRegistry::new();
        behaviors.register(
            "img/app",
            ContainerBehavior::Listeners(vec![ListenerSpec::tcp(8080), ListenerSpec::ephemeral()]),
        );
        let mut cluster = cluster_with(behaviors, false);
        let baseline = HostBaseline::capture(&cluster);
        let report = RuntimeAnalyzer::default().analyze(&mut cluster, &baseline);
        let rt = &report.pods["default/app"];
        assert_eq!(rt.stable, vec![ObservedSocket::tcp(8080)]);
        // The two draws land on different ports, so both runs contribute one.
        assert_eq!(rt.dynamic.len(), 2);
        assert!(rt.dynamic.iter().all(ObservedSocket::in_ephemeral_range));
    }

    #[test]
    fn single_run_cannot_see_dynamics() {
        let mut behaviors = BehaviorRegistry::new();
        behaviors.register(
            "img/app",
            ContainerBehavior::Listeners(vec![ListenerSpec::ephemeral()]),
        );
        let mut cluster = cluster_with(behaviors, false);
        let baseline = HostBaseline::capture(&cluster);
        let analyzer = RuntimeAnalyzer::new(ProbeConfig {
            double_run: false,
            ..Default::default()
        });
        let report = analyzer.analyze(&mut cluster, &baseline);
        let rt = &report.pods["default/app"];
        assert_eq!(rt.stable.len(), 1, "ephemeral port misclassified as stable");
        assert!(rt.dynamic.is_empty());
    }

    #[test]
    fn loopback_listeners_invisible() {
        let mut behaviors = BehaviorRegistry::new();
        behaviors.register(
            "img/app",
            ContainerBehavior::Listeners(vec![
                ListenerSpec::tcp(8080),
                ListenerSpec::tcp(6060).loopback(),
            ]),
        );
        let mut cluster = cluster_with(behaviors, false);
        let baseline = HostBaseline::capture(&cluster);
        let report = RuntimeAnalyzer::default().analyze(&mut cluster, &baseline);
        let rt = &report.pods["default/app"];
        assert!(rt.all_ports().all(|s| s.port != 6060));
    }

    #[test]
    fn host_network_baseline_subtraction() {
        let cluster = cluster_with(BehaviorRegistry::new(), true);
        let baseline = HostBaseline::capture(&cluster);
        // Note: the baseline here was captured *after* install, so it also
        // contains the app's own port; capture order matters. Re-do it the
        // right way: fresh cluster → baseline → install.
        let mut fresh = Cluster::new(ClusterConfig {
            nodes: 1,
            seed: 3,
            behaviors: BehaviorRegistry::new(),
        });
        let clean_baseline = HostBaseline::capture(&fresh);
        let pod = Pod::new(
            ObjectMeta::named("app"),
            PodSpec {
                containers: vec![
                    Container::new("c", "img/app").with_ports(vec![ContainerPort::tcp(9100)])
                ],
                host_network: true,
                node_name: None,
            },
        );
        fresh.apply(Object::Pod(pod)).unwrap();
        fresh.reconcile();
        let report = RuntimeAnalyzer::default().analyze(&mut fresh, &clean_baseline);
        let rt = &report.pods["default/app"];
        assert_eq!(
            rt.stable,
            vec![ObservedSocket::tcp(9100)],
            "node daemons subtracted"
        );

        // Without subtraction the kubelet & co. leak into the report.
        let report = RuntimeAnalyzer::default().analyze(&mut fresh, &HostBaseline::empty());
        let rt = &report.pods["default/app"];
        assert!(rt.stable.len() > 1, "baseline-less analysis over-reports");
        let _ = (cluster, baseline);
    }

    #[test]
    fn udp_noise_injected_and_filtered() {
        let noisy = ProbeConfig {
            udp_noise_rate: 1.0,
            filter_udp_flakiness: true,
            double_run: true,
            seed: 9,
        };
        let mut cluster = cluster_with(BehaviorRegistry::new(), false);
        let baseline = HostBaseline::capture(&cluster);
        let report = RuntimeAnalyzer::new(noisy.clone()).analyze(&mut cluster, &baseline);
        let rt = &report.pods["default/app"];
        assert_eq!(rt.stable, vec![ObservedSocket::tcp(8080)]);
        assert!(rt.dynamic.is_empty(), "noise filtered out");
        assert!(report.udp_noise_filtered >= 1);

        // Filter off: the spurious UDP ports surface as dynamic findings.
        let unfiltered = ProbeConfig {
            filter_udp_flakiness: false,
            ..noisy
        };
        let report = RuntimeAnalyzer::new(unfiltered).analyze(&mut cluster, &baseline);
        let rt = &report.pods["default/app"];
        assert!(
            !rt.dynamic.is_empty(),
            "unfiltered noise leaks into the report"
        );
    }

    #[test]
    fn observe_is_pure_and_per_pod_independent() {
        let mut cluster = cluster_with(BehaviorRegistry::new(), false);
        let baseline = HostBaseline::capture(&cluster);
        let analyzer = RuntimeAnalyzer::new(ProbeConfig {
            udp_noise_rate: 0.5,
            ..Default::default()
        });
        // Non-mutating and repeatable.
        let g = cluster.generation();
        let first = analyzer.observe(&cluster, &baseline);
        assert_eq!(cluster.generation(), g, "observe must not mutate");
        assert_eq!(first, analyzer.observe(&cluster, &baseline));
        assert!(first.pods["default/app"].dynamic.is_empty());

        // Adding an unrelated pod must not change what we see for the
        // original one (sequential noise draws would shift here).
        let before = first.pods["default/app"].clone();
        cluster
            .apply(Object::Pod(Pod::new(
                ObjectMeta::named("other"),
                PodSpec {
                    containers: vec![Container::new("c", "img/other")],
                    ..Default::default()
                },
            )))
            .unwrap();
        cluster.reconcile();
        let second = analyzer.observe(&cluster, &baseline);
        assert_eq!(second.pods["default/app"], before);
    }

    #[test]
    fn snapshot_is_deterministic() {
        let mk = || {
            let mut cluster = cluster_with(BehaviorRegistry::new(), false);
            let baseline = HostBaseline::capture(&cluster);
            RuntimeAnalyzer::default().analyze(&mut cluster, &baseline)
        };
        assert_eq!(mk().pods, mk().pods);
    }
}
