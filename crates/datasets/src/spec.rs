//! Application specifications: which misconfigurations each synthetic chart
//! carries. These are the corpus ground truth — something the real study
//! lacked (§6.3 "lack of a ground truth") and which this reproduction uses
//! both to calibrate Table 2 and to measure analyzer precision/recall.

use ij_core::MisconfigId;

/// The six organizations of §4.1.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Org {
    /// Banzai Cloud (sharing).
    BanzaiCloud,
    /// Bitnami, including the AKS-tailored variants (sharing).
    Bitnami,
    /// Cloud Native Computing Foundation projects (production).
    Cncf,
    /// European Environment Agency (internal).
    Eea,
    /// Prometheus Community (production).
    PrometheusCommunity,
    /// Wikimedia Foundation (internal).
    Wikimedia,
}

impl Org {
    /// All organizations, Table 2 row order.
    pub const ALL: [Org; 6] = [
        Org::BanzaiCloud,
        Org::Bitnami,
        Org::Cncf,
        Org::Eea,
        Org::PrometheusCommunity,
        Org::Wikimedia,
    ];

    /// Display name matching Table 2.
    pub fn as_str(&self) -> &'static str {
        match self {
            Org::BanzaiCloud => "Banzai Cloud",
            Org::Bitnami => "Bitnami",
            Org::Cncf => "CNCF",
            Org::Eea => "EEA",
            Org::PrometheusCommunity => "Prometheus C.",
            Org::Wikimedia => "Wikimedia",
        }
    }

    /// §4.1.1 use-case grouping.
    pub fn use_case(&self) -> UseCase {
        match self {
            Org::BanzaiCloud | Org::Bitnami => UseCase::Sharing,
            Org::Cncf | Org::PrometheusCommunity => UseCase::Production,
            Org::Eea | Org::Wikimedia => UseCase::Internal,
        }
    }
}

/// The three dataset use cases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UseCase {
    /// Charts built for third parties to reuse.
    Sharing,
    /// Charts the organization runs for its own software.
    Internal,
    /// Charts purpose-built for production deployments.
    Production,
}

/// How the chart handles NetworkPolicies (the M6 axis plus the §4.3.2
/// policy-quality axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetpolSpec {
    /// The chart ships no NetworkPolicy at all → M6 ("missing").
    Missing,
    /// The chart defines a policy template gated behind
    /// `networkPolicy.enabled`, default off → M6 ("defined but disabled").
    /// The quality flag matters when §4.3.2 force-enables the policy.
    DefinedDisabled {
        /// See [`NetpolSpec::Enabled::loose`].
        loose: bool,
    },
    /// A policy is rendered and active by default → no M6.
    Enabled {
        /// `false`: the policy restricts ingress to the union of declared
        /// ports (tight). `true`: the policy allows all ports to the
        /// selected pods (loose) — misconfigured endpoints stay reachable,
        /// the §4.3.2 "affected" case.
        loose: bool,
    },
}

impl NetpolSpec {
    /// True when the chart's template set defines a policy (even if off).
    pub fn defines_policy(&self) -> bool {
        !matches!(self, NetpolSpec::Missing)
    }

    /// True when the (defined) policy is of the allow-everything flavour.
    pub fn is_loose(&self) -> bool {
        matches!(
            self,
            NetpolSpec::DefinedDisabled { loose: true } | NetpolSpec::Enabled { loose: true }
        )
    }

    /// True when a policy is rendered with default values.
    pub fn enabled_by_default(&self) -> bool {
        matches!(self, NetpolSpec::Enabled { .. })
    }

    /// True when M6 fires.
    pub fn yields_m6(&self) -> bool {
        !self.enabled_by_default()
    }
}

/// The misconfigurations injected into one chart.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// Undeclared open ports on the main component.
    pub m1: usize,
    /// Worker components with ephemeral listeners.
    pub m2: usize,
    /// Declared-but-never-opened ports on the main component.
    pub m3: usize,
    /// Pairs of components with identical label sets.
    pub m4a: usize,
    /// Components targeted by two services each.
    pub m4b: usize,
    /// Services selecting two unrelated components via a shared subset.
    pub m4c: usize,
    /// Services targeting declared-but-unopened ports (ClusterIP).
    pub m5a: usize,
    /// Services targeting ports nothing declares.
    pub m5b: usize,
    /// Headless services whose target port is not available.
    pub m5c: usize,
    /// Services whose selector matches nothing.
    pub m5d: usize,
    /// NetworkPolicy posture.
    pub netpol: NetpolSpec,
    /// hostNetwork DaemonSet components.
    pub m7: usize,
    /// Replicas of the main server component (drives the §4.3.2 pod
    /// reachability counts).
    pub server_replicas: u32,
    /// Well-formed extra components (deployment + service pairs) that
    /// produce **no** findings. Structure-only: the synthetic-corpus
    /// archetypes use this to make a microservice mesh look different from
    /// a monolith without touching the ground truth.
    pub clean_components: usize,
    /// Cross-application collision tokens: apps sharing a token collide
    /// globally (M4\*). One finding is produced per token group.
    pub m4star_tokens: Vec<&'static str>,
}

impl Default for Plan {
    fn default() -> Self {
        Plan {
            m1: 0,
            m2: 0,
            m3: 0,
            m4a: 0,
            m4b: 0,
            m4c: 0,
            m5a: 0,
            m5b: 0,
            m5c: 0,
            m5d: 0,
            netpol: NetpolSpec::Missing,
            m7: 0,
            server_replicas: 1,
            clean_components: 0,
            m4star_tokens: Vec::new(),
        }
    }
}

impl Plan {
    /// A plan with no misconfigurations at all (policies enabled & tight).
    pub fn clean() -> Self {
        Plan {
            netpol: NetpolSpec::Enabled { loose: false },
            ..Default::default()
        }
    }

    /// Expected per-app finding count, excluding M4\* (which is attributed
    /// at the cluster-wide pass).
    pub fn expected_local_findings(&self) -> usize {
        self.m1
            + self.m2
            + self.m3
            + self.m4a
            + self.m4b
            + self.m4c
            + self.m5a
            + self.m5b
            + self.m5c
            + self.m5d
            + usize::from(self.netpol.yields_m6())
            + self.m7
    }

    /// Expected count for one misconfiguration class (local classes only).
    pub fn expected_of(&self, id: MisconfigId) -> usize {
        match id {
            MisconfigId::M1 => self.m1,
            MisconfigId::M2 => self.m2,
            MisconfigId::M3 => self.m3,
            MisconfigId::M4A => self.m4a,
            MisconfigId::M4B => self.m4b,
            MisconfigId::M4C => self.m4c,
            MisconfigId::M4Star => 0,
            MisconfigId::M5A => self.m5a,
            MisconfigId::M5B => self.m5b,
            MisconfigId::M5C => self.m5c,
            MisconfigId::M5D => self.m5d,
            MisconfigId::M6 => usize::from(self.netpol.yields_m6()),
            MisconfigId::M7 => self.m7,
        }
    }

    /// Expected distinct misconfiguration types (local classes only).
    pub fn expected_types(&self) -> usize {
        MisconfigId::ALL
            .iter()
            .filter(|&&id| self.expected_of(id) > 0)
            .count()
    }

    /// True when the chart will be counted as affected.
    pub fn is_affected(&self) -> bool {
        self.expected_local_findings() > 0 || !self.m4star_tokens.is_empty()
    }
}

/// One synthetic chart in the corpus.
#[derive(Debug, Clone, PartialEq)]
pub struct AppSpec {
    /// Chart name.
    pub name: String,
    /// Owning organization (dataset).
    pub org: Org,
    /// Version string (cosmetic, figure labels).
    pub version: String,
    /// Injected misconfigurations.
    pub plan: Plan,
}

impl AppSpec {
    /// Creates a spec.
    pub fn new(name: impl Into<String>, org: Org, version: impl Into<String>, plan: Plan) -> Self {
        AppSpec {
            name: name.into(),
            org,
            version: version.into(),
            plan,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_accounting() {
        let plan = Plan {
            m1: 2,
            m2: 1,
            m3: 1,
            m4b: 1,
            netpol: NetpolSpec::Missing,
            m7: 1,
            ..Default::default()
        };
        assert_eq!(plan.expected_local_findings(), 7);
        assert_eq!(plan.expected_of(MisconfigId::M1), 2);
        assert_eq!(plan.expected_of(MisconfigId::M6), 1);
        assert_eq!(plan.expected_types(), 6);
        assert!(plan.is_affected());
    }

    #[test]
    fn clean_plan_has_no_findings() {
        let plan = Plan::clean();
        assert_eq!(plan.expected_local_findings(), 0);
        assert!(!plan.is_affected());
        assert!(!plan.netpol.yields_m6());
    }

    #[test]
    fn netpol_semantics() {
        assert!(NetpolSpec::Missing.yields_m6());
        assert!(!NetpolSpec::Missing.defines_policy());
        assert!(NetpolSpec::DefinedDisabled { loose: false }.yields_m6());
        assert!(NetpolSpec::DefinedDisabled { loose: false }.defines_policy());
        assert!(!NetpolSpec::Enabled { loose: true }.yields_m6());
        assert!(NetpolSpec::Enabled { loose: true }.is_loose());
        assert!(!NetpolSpec::Missing.is_loose());
    }

    #[test]
    fn use_case_grouping() {
        assert_eq!(Org::Bitnami.use_case(), UseCase::Sharing);
        assert_eq!(Org::Cncf.use_case(), UseCase::Production);
        assert_eq!(Org::Wikimedia.use_case(), UseCase::Internal);
    }
}
