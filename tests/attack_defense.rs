//! End-to-end attack/defense scenarios spanning every crate: the two §2.1
//! proofs of concept, replayed with and without the `ij-guard` defense.

use inside_job::chart::Release;
use inside_job::cluster::{BehaviorRegistry, Cluster, ClusterConfig, ConnectOutcome};
use inside_job::core::StaticModel;
use inside_job::datasets::{concourse_behaviors, concourse_chart, thanos_behaviors, thanos_chart};
use inside_job::guard::{GuardAdmission, GuardPolicy, PolicySynthesizer};
use inside_job::model::{
    Container, ContainerPort, Labels, Object, ObjectMeta, Pod, PodSpec, Protocol,
};
use inside_job::probe::reachable_pod_endpoints;

fn registry(pairs: Vec<(String, inside_job::cluster::ContainerBehavior)>) -> BehaviorRegistry {
    let mut reg = BehaviorRegistry::new();
    for (image, b) in pairs {
        reg.register(image, b);
    }
    reg
}

fn attacker_pod() -> Object {
    Object::Pod(Pod::new(
        ObjectMeta::named("attacker"),
        PodSpec {
            containers: vec![Container::new("sh", "attacker/foothold")],
            ..Default::default()
        },
    ))
}

#[test]
fn concourse_c2_attack_succeeds_then_synthesis_closes_it() {
    let mut cluster = Cluster::new(ClusterConfig {
        nodes: 3,
        seed: 77,
        behaviors: registry(concourse_behaviors()),
    });
    let rendered = concourse_chart()
        .render(&Release::new("ci", "default"))
        .unwrap();
    cluster.install(&rendered).unwrap();
    cluster.apply(attacker_pod()).unwrap();
    cluster.reconcile();

    // The attacker reaches the web node's ephemeral tunnel endpoints.
    let reachable = reachable_pod_endpoints(&cluster, "default/attacker");
    let c2: Vec<_> = reachable
        .iter()
        .filter(|e| e.pod.contains("ci-web") && (32768..=60999).contains(&e.port))
        .collect();
    assert_eq!(c2.len(), 2, "two tunnel endpoints exposed: {reachable:?}");
    // …and the workers' undeclared API ports.
    assert!(reachable
        .iter()
        .any(|e| e.pod.contains("ci-worker") && e.port == 7777));

    // Synthesis from declared ports cuts off everything undeclared.
    let statics = StaticModel::from_objects(&rendered.objects);
    for obj in PolicySynthesizer::new().synthesize(&statics).objects() {
        cluster.apply(obj).unwrap();
    }
    for ep in &c2 {
        assert_eq!(
            cluster.connect("default/attacker", &ep.pod, ep.port, Protocol::Tcp),
            Some(ConnectOutcome::DeniedIngress)
        );
    }
    assert_eq!(
        cluster.connect(
            "default/attacker",
            &reachable.iter().find(|e| e.port == 7777).unwrap().pod,
            7777,
            Protocol::Tcp
        ),
        Some(ConnectOutcome::DeniedIngress),
        "worker API closed too"
    );
    // The declared web UI stays reachable.
    assert_eq!(
        cluster.connect("default/attacker", "default/ci-web-0", 8080, Protocol::Tcp),
        Some(ConnectOutcome::Connected)
    );
}

#[test]
fn thanos_impersonation_succeeds_unguarded_and_is_denied_guarded() {
    let imposter = Object::Pod(Pod::new(
        ObjectMeta::named("imposter").with_labels(Labels::from_pairs([(
            "app.kubernetes.io/name",
            "thanos-query-frontend",
        )])),
        PodSpec {
            containers: vec![Container::new("l", "attacker/listener")
                .with_ports(vec![ContainerPort::named("http", 9090)])],
            ..Default::default()
        },
    ));

    // Unguarded: the imposter joins the service backends.
    let mut cluster = Cluster::new(ClusterConfig {
        nodes: 3,
        seed: 88,
        behaviors: registry(thanos_behaviors()),
    });
    let rendered = thanos_chart()
        .render(&Release::new("th", "default"))
        .unwrap();
    cluster.install(&rendered).unwrap();
    cluster.apply(attacker_pod()).unwrap();
    cluster.apply(imposter.clone()).unwrap();
    cluster.reconcile();
    let backends =
        cluster.send_to_service("default/attacker", "default", "th-query-frontend", 9090);
    assert!(backends.contains(&"default/imposter".to_string()));

    // Guarded: admission refuses the colliding pod (the chart itself also
    // collides, so the guard flags the install as well).
    let mut guarded = Cluster::new(ClusterConfig {
        nodes: 3,
        seed: 88,
        behaviors: registry(thanos_behaviors()),
    });
    guarded.push_admission(Box::new(GuardAdmission::new(GuardPolicy::default())));
    let err = guarded.install(&rendered).unwrap_err();
    assert!(err.to_string().contains("label collision"));

    // Audit mode lets the chart in with warnings, but a later enforcing
    // guard still refuses the imposter.
    let mut audit = Cluster::new(ClusterConfig {
        nodes: 3,
        seed: 88,
        behaviors: registry(thanos_behaviors()),
    });
    audit.push_admission(Box::new(GuardAdmission::new(GuardPolicy::audit_only())));
    let warnings = audit.install(&rendered).unwrap();
    assert!(!warnings.is_empty(), "audit mode surfaces the collision");
}

#[test]
fn guard_admission_blocks_cross_release_collision() {
    // M4*: two releases, the second collides with the first's labels.
    let mut cluster = Cluster::new(ClusterConfig::default());
    cluster.push_admission(Box::new(GuardAdmission::new(GuardPolicy::default())));
    let make = |name: &str| {
        Object::Pod(Pod::new(
            ObjectMeta::named(name).with_labels(Labels::from_pairs([(
                "app.kubernetes.io/part-of",
                "shared-stack",
            )])),
            PodSpec {
                containers: vec![Container::new("c", "img")],
                ..Default::default()
            },
        ))
    };
    cluster.apply(make("release-a-comp")).unwrap();
    let err = cluster.apply(make("release-b-comp")).unwrap_err();
    assert!(err.to_string().contains("identical label set"));
}
