//! The corpus runner trusts its generated charts to render; hand-built
//! charts may not. These tests pin down the failure behaviour: `ij-chart`
//! returns typed errors, and the census pipeline surfaces them as
//! [`CensusError::Render`] naming the chart — never a panic.

use ij_chart::{Chart, Error, Release};
use ij_datasets::{
    analyze_one, build_app, AppSpec, BuiltApp, CensusError, CensusPipeline, CorpusOptions, Org,
    Plan,
};

/// A template that renders to structurally invalid YAML (a sequence item
/// where a mapping value is required).
const BAD_YAML_TEMPLATE: &str = "\
apiVersion: v1
kind: Service
metadata:
  name: broken
spec:
  - this is a sequence
  where: a mapping was required
";

fn malformed_chart() -> Chart {
    Chart::builder("malformed")
        .template("broken.yaml", BAD_YAML_TEMPLATE)
        .build()
}

#[test]
fn render_reports_invalid_yaml_with_template_name() {
    let err = malformed_chart()
        .render(&Release::new("x", "default"))
        .expect_err("malformed chart must not render");
    match err {
        Error::RenderedYaml { template, .. } => assert_eq!(template, "broken.yaml"),
        other => panic!("expected RenderedYaml, got {other:?}"),
    }
}

#[test]
fn render_reports_template_syntax_errors() {
    let err = Chart::builder("syntax")
        .template("bad.yaml", "value: {{ .Values.x") // unclosed action
        .build()
        .render(&Release::new("x", "default"))
        .expect_err("unclosed template action must not render");
    match err {
        Error::Template { template, .. } => assert_eq!(template, "bad.yaml"),
        other => panic!("expected Template, got {other:?}"),
    }
}

#[test]
fn analyze_one_returns_typed_render_error() {
    // Reuse a real built app for the spec/behaviours, then swap in a chart
    // that cannot render — the pipeline must return a typed error naming
    // the chart instead of panicking (the seed's behaviour).
    let spec = AppSpec::new("malformed-app", Org::Cncf, "0.0.1", Plan::clean());
    let base = build_app(&spec);
    let built = BuiltApp::new(base.spec.clone(), malformed_chart(), base.behaviors.clone());
    let err = analyze_one(&built, &CorpusOptions::default())
        .expect_err("malformed chart must surface an error");
    assert_eq!(err.app(), "malformed-app");
    match &err {
        CensusError::Render { app, source } => {
            assert_eq!(app, "malformed-app");
            assert!(matches!(source, Error::RenderedYaml { .. }), "{source:?}");
        }
        other => panic!("expected CensusError::Render, got {other:?}"),
    }
    // The rendered message names the chart, like the old panic did.
    assert!(err
        .to_string()
        .contains("chart malformed-app failed to render"));
    // std::error::Error wiring: the chart error is the source.
    assert!(std::error::Error::source(&err).is_some());
}

#[test]
fn pipeline_analyze_one_matches_wrapper_error() {
    let spec = AppSpec::new("malformed-app", Org::Cncf, "0.0.1", Plan::clean());
    let base = build_app(&spec);
    let built = BuiltApp::new(base.spec.clone(), malformed_chart(), base.behaviors.clone());
    let err = CensusPipeline::builder()
        .build()
        .analyze_one(&built)
        .expect_err("malformed chart must surface an error");
    assert!(matches!(err, CensusError::Render { .. }));
}
