//! Property tests for the sharded streaming census (interned findings).
//!
//! The contract under test is the determinism guarantee documented in
//! `docs/ARCHITECTURE.md`: for every scenario profile, the census produced
//! by `run_generated_compact` is byte-identical (after resolution, and in
//! its resolved `Debug` form) across every `(shards, threads)` combination,
//! and a `CompactFinding`'s FNV identity equals the identity of the owned
//! `Finding` it resolves to — so the incremental auditor's delta keys are
//! unchanged by the flat-memory representation.

use ij_datasets::{CensusPipeline, CorpusGenerator, CorpusProfile};

/// Small-but-representative population for each profile: big enough to
/// exercise every archetype weight, small enough to keep the full
/// profiles × shards × threads matrix in CI budget.
const APPS: usize = 18;
const SEED: u64 = 7;

fn generator_for(profile: CorpusProfile) -> CorpusGenerator {
    CorpusGenerator::new(profile.with_apps(APPS).with_seed(SEED))
}

#[test]
fn sharded_census_is_byte_identical_on_every_scenario_profile() {
    for profile in CorpusProfile::scenario_matrix() {
        let name = profile.name().to_string();
        let generator = generator_for(profile);
        let reference = CensusPipeline::builder()
            .build()
            .run_generated(&generator)
            .expect("sequential census");
        let expected = format!("{reference:#?}");
        for shards in [1usize, 2, 8] {
            for threads in [1usize, 8] {
                let census = CensusPipeline::builder()
                    .shards(shards)
                    .threads(threads)
                    .build()
                    .run_generated_compact(&generator)
                    .expect("sharded census")
                    .resolve();
                assert_eq!(
                    format!("{census:#?}"),
                    expected,
                    "profile {name}: shards={shards} threads={threads} diverged"
                );
            }
        }
    }
}

#[test]
fn compact_identities_match_owned_identities_for_a_generated_corpus() {
    let generator = generator_for(CorpusProfile::named("baseline").expect("baseline profile"));
    let owned = CensusPipeline::builder()
        .build()
        .run_generated(&generator)
        .expect("owned census");
    let compact = CensusPipeline::builder()
        .shards(4)
        .threads(2)
        .build()
        .run_generated_compact(&generator)
        .expect("compact census");

    assert_eq!(owned.apps.len(), compact.apps.len());
    let mut findings = 0usize;
    for (oa, ca) in owned.apps.iter().zip(&compact.apps) {
        assert_eq!(oa.findings.len(), ca.findings.len());
        for (of, cf) in oa.findings.iter().zip(&ca.findings) {
            assert_eq!(
                of.identity(),
                cf.identity(compact.table()),
                "identity drifted for {} on {}",
                of.id,
                of.app
            );
            findings += 1;
        }
    }
    assert!(findings > 0, "corpus produced no findings to compare");
}
