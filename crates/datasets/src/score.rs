//! Precision / recall scoring against corpus ground truth.
//!
//! The paper's §6.3 names the lack of ground truth as a limitation: the
//! authors could only validate findings through developer feedback. The
//! synthetic corpus removes that limitation — every chart knows its injected
//! plan — so analyzer configurations can be scored exactly.

use crate::spec::AppSpec;
use ij_core::{Finding, MisconfigId};
use std::collections::BTreeMap;

/// Detection counts for one misconfiguration class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassScore {
    /// Findings matching an injected misconfiguration.
    pub true_positives: usize,
    /// Findings with no corresponding injection.
    pub false_positives: usize,
    /// Injections the analyzer missed.
    pub false_negatives: usize,
}

impl ClassScore {
    /// Precision (1.0 when nothing was reported).
    pub fn precision(&self) -> f64 {
        let reported = self.true_positives + self.false_positives;
        if reported == 0 {
            1.0
        } else {
            self.true_positives as f64 / reported as f64
        }
    }

    /// Recall (1.0 when nothing was injected).
    pub fn recall(&self) -> f64 {
        let expected = self.true_positives + self.false_negatives;
        if expected == 0 {
            1.0
        } else {
            self.true_positives as f64 / expected as f64
        }
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let (p, r) = (self.precision(), self.recall());
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Per-class and aggregate scores for a corpus run.
#[derive(Debug, Clone, Default)]
pub struct ScoreReport {
    /// Per-class detection scores.
    pub classes: BTreeMap<MisconfigId, ClassScore>,
}

impl ScoreReport {
    /// Aggregate score across all classes.
    pub fn overall(&self) -> ClassScore {
        let mut total = ClassScore::default();
        for s in self.classes.values() {
            total.true_positives += s.true_positives;
            total.false_positives += s.false_positives;
            total.false_negatives += s.false_negatives;
        }
        total
    }

    /// Score for one class.
    pub fn class(&self, id: MisconfigId) -> ClassScore {
        self.classes.get(&id).copied().unwrap_or_default()
    }

    /// Renders a compact table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<6} {:>4} {:>4} {:>4} {:>10} {:>7} {:>7}\n",
            "class", "TP", "FP", "FN", "precision", "recall", "F1"
        ));
        for id in MisconfigId::ALL {
            let s = self.class(id);
            if s == ClassScore::default() {
                continue;
            }
            out.push_str(&format!(
                "{:<6} {:>4} {:>4} {:>4} {:>10.3} {:>7.3} {:>7.3}\n",
                id.as_str(),
                s.true_positives,
                s.false_positives,
                s.false_negatives,
                s.precision(),
                s.recall(),
                s.f1()
            ));
        }
        let o = self.overall();
        out.push_str(&format!(
            "{:<6} {:>4} {:>4} {:>4} {:>10.3} {:>7.3} {:>7.3}\n",
            "all",
            o.true_positives,
            o.false_positives,
            o.false_negatives,
            o.precision(),
            o.recall(),
            o.f1()
        ));
        out
    }
}

/// Scores one application's findings against its plan. Per-class counting:
/// `min(found, expected)` are true positives; surplus findings are false
/// positives; shortfall is false negatives. (M4\* is attributed at the
/// cluster level, so it is scored only when `expected_m4star` is supplied.)
pub fn score_app(spec: &AppSpec, findings: &[Finding]) -> ScoreReport {
    let mut report = ScoreReport::default();
    for id in MisconfigId::ALL {
        if id == MisconfigId::M4Star {
            continue;
        }
        let expected = spec.plan.expected_of(id);
        let found = findings.iter().filter(|f| f.id == id).count();
        let tp = expected.min(found);
        let entry = report.classes.entry(id).or_default();
        entry.true_positives += tp;
        entry.false_positives += found - tp;
        entry.false_negatives += expected - tp;
    }
    report
}

/// Scores a whole corpus run (sum of per-app scores).
pub fn score_corpus<'a>(
    results: impl IntoIterator<Item = (&'a AppSpec, &'a [Finding])>,
) -> ScoreReport {
    let mut total = ScoreReport::default();
    for (spec, findings) in results {
        let app = score_app(spec, findings);
        for (id, s) in app.classes {
            let entry = total.classes.entry(id).or_default();
            entry.true_positives += s.true_positives;
            entry.false_positives += s.false_positives;
            entry.false_negatives += s.false_negatives;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_app;
    use crate::runner::{analyze_one, CorpusOptions};
    use crate::spec::{NetpolSpec, Org, Plan};
    use ij_core::Analyzer;
    use ij_probe::ProbeConfig;

    fn spec() -> AppSpec {
        AppSpec::new(
            "scored",
            Org::Cncf,
            "1.0.0",
            Plan {
                m1: 2,
                m2: 1,
                m3: 1,
                m4a: 1,
                m5b: 1,
                netpol: NetpolSpec::Missing,
                ..Default::default()
            },
        )
    }

    #[test]
    fn hybrid_scores_perfectly() {
        let built = build_app(&spec());
        let analysis = analyze_one(&built, &CorpusOptions::default()).expect("corpus app analyzes");
        let report = score_app(&spec(), &analysis.findings);
        let o = report.overall();
        assert_eq!(o.false_positives, 0);
        assert_eq!(o.false_negatives, 0);
        assert!((report.overall().f1() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn static_only_keeps_precision_loses_recall() {
        let built = build_app(&spec());
        let opts = CorpusOptions {
            analyzer: Analyzer::static_only(),
            ..Default::default()
        };
        let analysis = analyze_one(&built, &opts).expect("corpus app analyzes");
        let report = score_app(&spec(), &analysis.findings);
        assert!((report.overall().precision() - 1.0).abs() < 1e-9);
        assert!(report.overall().recall() < 1.0);
        assert_eq!(report.class(MisconfigId::M1).recall(), 0.0);
        assert_eq!(report.class(MisconfigId::M4A).recall(), 1.0);
    }

    #[test]
    fn noisy_unfiltered_probe_costs_precision() {
        let built = build_app(&spec());
        let opts = CorpusOptions {
            probe: ProbeConfig {
                udp_noise_rate: 1.0,
                filter_udp_flakiness: false,
                ..Default::default()
            },
            ..Default::default()
        };
        let analysis = analyze_one(&built, &opts).expect("corpus app analyzes");
        let report = score_app(&spec(), &analysis.findings);
        assert!(report.overall().precision() < 1.0, "{}", report.render());
        assert!((report.overall().recall() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn render_includes_overall_row() {
        let built = build_app(&spec());
        let analysis = analyze_one(&built, &CorpusOptions::default()).expect("corpus app analyzes");
        let report = score_app(&spec(), &analysis.findings);
        let text = report.render();
        assert!(text.contains("all"));
        assert!(text.contains("M1"));
    }
}
