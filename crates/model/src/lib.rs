//! # ij-model — the Kubernetes object model
//!
//! Typed representations of the Kubernetes resources that matter for
//! cluster-internal networking: pods and their containers, the workload
//! ("compute unit") kinds that template pods, services, endpoints, network
//! policies, and namespaces — together with the label/selector machinery that
//! binds them to each other.
//!
//! Objects decode from and encode to the YAML subset in [`ij_yaml`], so a
//! rendered Helm chart becomes a `Vec<Object>` and any object can be printed
//! back as a manifest.
//!
//! The terminology follows the paper: a **compute unit** is any workload
//! resource that owns a pod template (Deployment, StatefulSet, DaemonSet,
//! ReplicaSet, Job) or a bare Pod.

mod attrs;
mod codec;
mod endpoints;
mod error;
mod intern;
mod meta;
mod netpol;
mod object;
mod pod;
mod service;
mod workload;

pub use attrs::{AttrId, AttrSchema, AttrType};
pub use endpoints::{EndpointAddress, Endpoints};
pub use error::{Error, Result};
pub use intern::{KeyId, LabelId, LabelInterner, LabelSet, SelectorMatcher};
pub use meta::{LabelSelector, Labels, ObjectMeta, SelectorOp, SelectorRequirement};
pub use netpol::{
    IpBlock, NetworkPolicy, NetworkPolicyPeer, NetworkPolicyRule, NetworkPolicySpec, PolicyPort,
    PolicyPortRef, PolicyType,
};
pub use object::{decode_manifest, decode_manifests, Object};
pub use pod::{Container, ContainerPort, EnvVar, Pod, PodSpec, PodStatus, Protocol};
pub use service::{Service, ServicePort, ServiceSpec, ServiceType, TargetPort};
pub use workload::{PodTemplate, Workload, WorkloadKind};
