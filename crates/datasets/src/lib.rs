//! # ij-datasets — the calibrated evaluation corpus
//!
//! The paper evaluates open-source Helm charts from six organizations.
//! Those exact charts (and their container images) are not reproducible
//! offline, so this crate generates a **synthetic corpus with the same
//! shape**: the same six datasets with the same per-dataset application
//! counts, each chart carrying an injected misconfiguration plan such that
//! the per-class counts sum exactly to Table 2 (634 findings, 259 affected
//! applications; the table's dataset sizes sum to 290 even though the text
//! says 287 — this corpus follows the table), the named applications of
//! Figures 3a/3b carry their published profiles, and the policy postures of
//! Figure 4b hold per dataset.
//!
//! Unlike the real study, the corpus has **ground truth**: every chart knows
//! which findings it should produce, so analyzer precision and recall are
//! testable (the paper notes the lack of ground truth as a limitation,
//! §6.3).
//!
//! The crate also ships the §2.1 proof-of-concept applications (Concourse
//! and Thanos) and the representative per-class charts used for the Table 3
//! tool comparison.

mod builder;
mod orgs;
mod poc;
mod representative;
mod runner;
mod score;
mod spec;

pub use builder::{build_app, ports, BuiltApp};
pub use orgs::corpus;
pub use poc::{concourse_behaviors, concourse_chart, thanos_behaviors, thanos_chart};
pub use representative::representative_charts;
pub use runner::{
    analyze_one, policy_impact, run_census, AppAnalysis, CorpusOptions, PolicyImpact,
};
pub use score::{score_app, score_corpus, ClassScore, ScoreReport};
pub use spec::{AppSpec, NetpolSpec, Org, Plan, UseCase};
