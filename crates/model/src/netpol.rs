//! NetworkPolicy resources.
//!
//! Kubernetes policies are *additive allow-lists*: once any policy selects a
//! pod for a direction, that direction flips from default-allow to
//! default-deny plus the union of all matching rules. The paper's M6 is the
//! absence (or non-enablement) of such policies; §4.3.2 evaluates how little
//! the existing ones actually restrict.

use crate::codec;
use crate::error::{Error, Result};
use crate::meta::{LabelSelector, ObjectMeta};
use crate::pod::Protocol;
use ij_yaml::{Map, Value};
use serde::{Deserialize, Serialize};

/// Direction a policy applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PolicyType {
    /// Controls traffic *into* the selected pods.
    Ingress,
    /// Controls traffic *out of* the selected pods.
    Egress,
}

/// A CIDR allow with optional carve-outs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IpBlock {
    /// Allowed CIDR, e.g. `10.0.0.0/8`.
    pub cidr: String,
    /// CIDRs excluded from the allow.
    pub except: Vec<String>,
}

/// A peer in a `from`/`to` clause.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct NetworkPolicyPeer {
    /// Pods matched by label (within the policy's namespace unless a
    /// namespace selector is present).
    pub pod_selector: Option<LabelSelector>,
    /// Namespaces matched by label.
    pub namespace_selector: Option<LabelSelector>,
    /// IP-range peer.
    pub ip_block: Option<IpBlock>,
}

impl NetworkPolicyPeer {
    /// Peer selecting pods by labels in the same namespace.
    pub fn pods(selector: LabelSelector) -> Self {
        NetworkPolicyPeer {
            pod_selector: Some(selector),
            ..Default::default()
        }
    }
}

/// A port entry in a policy rule. `port: None` means *all* ports. `end_port`
/// extends the entry to a numeric range — the only (coarse) way to cover
/// dynamic ports (M2), as §3.3 notes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PolicyPort {
    /// Transport protocol (default TCP).
    pub protocol: Protocol,
    /// Starting port, or a named container port. `None` allows all ports of
    /// the protocol.
    pub port: Option<PolicyPortRef>,
    /// Inclusive range end (requires a numeric `port`).
    pub end_port: Option<u16>,
}

/// Numeric or named port reference in a policy.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PolicyPortRef {
    /// Literal port number.
    Number(u16),
    /// Named container port, resolved per-pod.
    Name(String),
}

impl PolicyPort {
    /// A single numeric TCP port.
    pub fn tcp(port: u16) -> Self {
        PolicyPort {
            protocol: Protocol::Tcp,
            port: Some(PolicyPortRef::Number(port)),
            end_port: None,
        }
    }

    /// A numeric TCP range (used to blanket dynamic port ranges).
    pub fn tcp_range(from: u16, to: u16) -> Self {
        PolicyPort {
            protocol: Protocol::Tcp,
            port: Some(PolicyPortRef::Number(from)),
            end_port: Some(to),
        }
    }

    /// True when the entry covers `(port, protocol)` for a pod whose named
    /// ports resolve through `resolve`.
    pub fn covers(
        &self,
        port: u16,
        protocol: Protocol,
        resolve: &dyn Fn(&str) -> Option<u16>,
    ) -> bool {
        if protocol != self.protocol {
            return false;
        }
        match (&self.port, self.end_port) {
            (None, _) => true,
            (Some(PolicyPortRef::Number(p)), None) => *p == port,
            (Some(PolicyPortRef::Number(p)), Some(end)) => (*p..=end).contains(&port),
            (Some(PolicyPortRef::Name(n)), _) => resolve(n) == Some(port),
        }
    }
}

/// One ingress or egress rule: a set of peers and a set of ports, each
/// empty-means-all.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct NetworkPolicyRule {
    /// Allowed peers (`from` for ingress, `to` for egress). Empty allows all
    /// sources/destinations.
    pub peers: Vec<NetworkPolicyPeer>,
    /// Allowed ports. Empty allows all ports.
    pub ports: Vec<PolicyPort>,
}

/// NetworkPolicy spec.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct NetworkPolicySpec {
    /// Pods this policy applies to. Empty selector = all pods in namespace.
    pub pod_selector: LabelSelector,
    /// Directions the policy participates in.
    pub policy_types: Vec<PolicyType>,
    /// Ingress allow rules.
    pub ingress: Vec<NetworkPolicyRule>,
    /// Egress allow rules.
    pub egress: Vec<NetworkPolicyRule>,
}

/// A NetworkPolicy object.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetworkPolicy {
    /// Metadata.
    pub meta: ObjectMeta,
    /// Specification.
    pub spec: NetworkPolicySpec,
}

impl NetworkPolicy {
    /// A deny-all-ingress policy for the selected pods (no rules at all).
    pub fn deny_all_ingress(meta: ObjectMeta, pod_selector: LabelSelector) -> Self {
        NetworkPolicy {
            meta,
            spec: NetworkPolicySpec {
                pod_selector,
                policy_types: vec![PolicyType::Ingress],
                ingress: vec![],
                egress: vec![],
            },
        }
    }

    /// An allow-ingress policy restricted to given peers and ports.
    pub fn allow_ingress(
        meta: ObjectMeta,
        pod_selector: LabelSelector,
        peers: Vec<NetworkPolicyPeer>,
        ports: Vec<PolicyPort>,
    ) -> Self {
        NetworkPolicy {
            meta,
            spec: NetworkPolicySpec {
                pod_selector,
                policy_types: vec![PolicyType::Ingress],
                ingress: vec![NetworkPolicyRule { peers, ports }],
                egress: vec![],
            },
        }
    }

    /// True when the policy participates in the given direction. When
    /// `policyTypes` is omitted, Kubernetes infers Ingress always and Egress
    /// only if egress rules exist.
    pub fn applies_to(&self, direction: PolicyType) -> bool {
        if self.spec.policy_types.is_empty() {
            match direction {
                PolicyType::Ingress => true,
                PolicyType::Egress => !self.spec.egress.is_empty(),
            }
        } else {
            self.spec.policy_types.contains(&direction)
        }
    }

    pub(crate) fn decode(root: &Map) -> Result<NetworkPolicy> {
        let meta = ObjectMeta::decode(root)?;
        let spec = codec::opt_map(root, "spec", "networkpolicy")?
            .ok_or_else(|| Error::malformed("missing networkpolicy `spec`"))?;
        let pod_selector = match codec::opt_map(spec, "podSelector", "spec")? {
            Some(m) => LabelSelector::decode(m, "spec.podSelector")?,
            None => LabelSelector::everything(),
        };
        let mut policy_types = Vec::new();
        for t in codec::opt_seq(spec, "policyTypes", "spec")? {
            match t.render_scalar().as_str() {
                "Ingress" => policy_types.push(PolicyType::Ingress),
                "Egress" => policy_types.push(PolicyType::Egress),
                other => {
                    return Err(Error::malformed(format!(
                        "spec.policyTypes: unknown type `{other}`"
                    )))
                }
            }
        }
        let ingress = decode_rules(spec, "ingress", "from")?;
        let egress = decode_rules(spec, "egress", "to")?;
        Ok(NetworkPolicy {
            meta,
            spec: NetworkPolicySpec {
                pod_selector,
                policy_types,
                ingress,
                egress,
            },
        })
    }

    pub(crate) fn encode(&self) -> Value {
        let mut spec = Map::with_capacity(4);
        spec.push_unchecked("podSelector", self.spec.pod_selector.encode());
        if !self.spec.policy_types.is_empty() {
            spec.push_unchecked(
                "policyTypes",
                Value::Seq(
                    self.spec
                        .policy_types
                        .iter()
                        .map(|t| {
                            Value::str(match t {
                                PolicyType::Ingress => "Ingress",
                                PolicyType::Egress => "Egress",
                            })
                        })
                        .collect(),
                ),
            );
        }
        if !self.spec.ingress.is_empty() {
            spec.push_unchecked("ingress", encode_rules(&self.spec.ingress, "from"));
        }
        if !self.spec.egress.is_empty() {
            spec.push_unchecked("egress", encode_rules(&self.spec.egress, "to"));
        }
        let mut m = Map::with_capacity(4);
        m.push_unchecked("apiVersion", Value::str("networking.k8s.io/v1"));
        m.push_unchecked("kind", Value::str("NetworkPolicy"));
        m.push_unchecked("metadata", self.meta.encode());
        m.push_unchecked("spec", Value::Map(spec));
        Value::Map(m)
    }
}

fn decode_rules(spec: &Map, field: &str, peer_field: &str) -> Result<Vec<NetworkPolicyRule>> {
    let mut rules = Vec::new();
    for (i, r) in codec::opt_seq(spec, field, "spec")?.iter().enumerate() {
        let rctx = format!("spec.{field}[{i}]");
        let rm = codec::as_map(r, &rctx)?;
        let mut peers = Vec::new();
        for (j, p) in codec::opt_seq(rm, peer_field, &rctx)?.iter().enumerate() {
            let pctx = format!("{rctx}.{peer_field}[{j}]");
            let pm = codec::as_map(p, &pctx)?;
            let pod_selector = match codec::opt_map(pm, "podSelector", &pctx)? {
                Some(m) => Some(LabelSelector::decode(m, &format!("{pctx}.podSelector"))?),
                None => None,
            };
            let namespace_selector = match codec::opt_map(pm, "namespaceSelector", &pctx)? {
                Some(m) => Some(LabelSelector::decode(
                    m,
                    &format!("{pctx}.namespaceSelector"),
                )?),
                None => None,
            };
            let ip_block = match codec::opt_map(pm, "ipBlock", &pctx)? {
                Some(m) => Some(IpBlock {
                    cidr: codec::req_str(m, "cidr", &format!("{pctx}.ipBlock"))?,
                    except: codec::opt_seq(m, "except", &format!("{pctx}.ipBlock"))?
                        .iter()
                        .map(|v| v.render_scalar())
                        .collect(),
                }),
                None => None,
            };
            peers.push(NetworkPolicyPeer {
                pod_selector,
                namespace_selector,
                ip_block,
            });
        }
        let mut ports = Vec::new();
        for (j, p) in codec::opt_seq(rm, "ports", &rctx)?.iter().enumerate() {
            let pctx = format!("{rctx}.ports[{j}]");
            let pm = codec::as_map(p, &pctx)?;
            let protocol = match codec::opt_str(pm, "protocol", &pctx)? {
                Some(p) => Protocol::decode(&p, &pctx)?,
                None => Protocol::Tcp,
            };
            let port = match pm.get("port") {
                None | Some(Value::Null) => None,
                Some(Value::Int(i)) => {
                    Some(PolicyPortRef::Number(u16::try_from(*i).map_err(|_| {
                        Error::malformed(format!("{pctx}.port out of range"))
                    })?))
                }
                Some(Value::Str(s)) => match s.parse::<u16>() {
                    Ok(n) => Some(PolicyPortRef::Number(n)),
                    Err(_) => Some(PolicyPortRef::Name(s.clone())),
                },
                Some(_) => return Err(Error::field(format!("{pctx}.port"), "int or string")),
            };
            let end_port = codec::opt_int(pm, "endPort", &pctx)?
                .map(|p| {
                    u16::try_from(p)
                        .map_err(|_| Error::malformed(format!("{pctx}.endPort out of range")))
                })
                .transpose()?;
            ports.push(PolicyPort {
                protocol,
                port,
                end_port,
            });
        }
        rules.push(NetworkPolicyRule { peers, ports });
    }
    Ok(rules)
}

fn encode_rules(rules: &[NetworkPolicyRule], peer_field: &str) -> Value {
    Value::Seq(
        rules
            .iter()
            .map(|r| {
                let mut rm = Map::with_capacity(2);
                if !r.peers.is_empty() {
                    rm.push_unchecked(
                        peer_field,
                        Value::Seq(
                            r.peers
                                .iter()
                                .map(|p| {
                                    let mut pm = Map::with_capacity(3);
                                    if let Some(s) = &p.pod_selector {
                                        pm.push_unchecked("podSelector", s.encode());
                                    }
                                    if let Some(s) = &p.namespace_selector {
                                        pm.push_unchecked("namespaceSelector", s.encode());
                                    }
                                    if let Some(b) = &p.ip_block {
                                        let mut bm = Map::with_capacity(2);
                                        bm.push_unchecked("cidr", Value::str(&b.cidr));
                                        if !b.except.is_empty() {
                                            bm.push_unchecked(
                                                "except",
                                                Value::Seq(
                                                    b.except.iter().map(Value::str).collect(),
                                                ),
                                            );
                                        }
                                        pm.push_unchecked("ipBlock", Value::Map(bm));
                                    }
                                    Value::Map(pm)
                                })
                                .collect(),
                        ),
                    );
                }
                if !r.ports.is_empty() {
                    rm.push_unchecked(
                        "ports",
                        Value::Seq(
                            r.ports
                                .iter()
                                .map(|p| {
                                    let mut pm = Map::with_capacity(3);
                                    if p.protocol != Protocol::Tcp {
                                        pm.push_unchecked(
                                            "protocol",
                                            Value::str(p.protocol.as_str()),
                                        );
                                    }
                                    match &p.port {
                                        Some(PolicyPortRef::Number(n)) => {
                                            pm.push_unchecked("port", Value::Int(*n as i64));
                                        }
                                        Some(PolicyPortRef::Name(n)) => {
                                            pm.push_unchecked("port", Value::str(n));
                                        }
                                        None => {}
                                    }
                                    if let Some(e) = p.end_port {
                                        pm.push_unchecked("endPort", Value::Int(e as i64));
                                    }
                                    Value::Map(pm)
                                })
                                .collect(),
                        ),
                    );
                }
                Value::Map(rm)
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::Labels;

    #[test]
    fn decode_allow_ingress_policy() {
        let src = "\
apiVersion: networking.k8s.io/v1
kind: NetworkPolicy
metadata:
  name: allow-web
spec:
  podSelector:
    matchLabels:
      app: web
  policyTypes:
    - Ingress
  ingress:
    - from:
        - podSelector:
            matchLabels:
              app: frontend
      ports:
        - port: 8080
        - protocol: UDP
          port: 53
";
        let v = ij_yaml::parse(src).unwrap();
        let np = NetworkPolicy::decode(v.as_map().unwrap()).unwrap();
        assert!(np.applies_to(PolicyType::Ingress));
        assert!(!np.applies_to(PolicyType::Egress));
        assert_eq!(np.spec.ingress.len(), 1);
        assert_eq!(np.spec.ingress[0].ports.len(), 2);
        let resolve = |_: &str| None;
        assert!(np.spec.ingress[0].ports[0].covers(8080, Protocol::Tcp, &resolve));
        assert!(!np.spec.ingress[0].ports[0].covers(8080, Protocol::Udp, &resolve));
        assert!(np.spec.ingress[0].ports[1].covers(53, Protocol::Udp, &resolve));
    }

    #[test]
    fn port_range_covers() {
        let p = PolicyPort::tcp_range(32768, 60999);
        let resolve = |_: &str| None;
        assert!(p.covers(43271, Protocol::Tcp, &resolve));
        assert!(!p.covers(8080, Protocol::Tcp, &resolve));
    }

    #[test]
    fn named_policy_port_resolution() {
        let p = PolicyPort {
            protocol: Protocol::Tcp,
            port: Some(PolicyPortRef::Name("metrics".into())),
            end_port: None,
        };
        let resolve = |n: &str| (n == "metrics").then_some(9100);
        assert!(p.covers(9100, Protocol::Tcp, &resolve));
        assert!(!p.covers(9101, Protocol::Tcp, &resolve));
    }

    #[test]
    fn omitted_policy_types_inference() {
        let np = NetworkPolicy {
            meta: ObjectMeta::named("p"),
            spec: NetworkPolicySpec {
                pod_selector: LabelSelector::everything(),
                policy_types: vec![],
                ingress: vec![],
                egress: vec![NetworkPolicyRule::default()],
            },
        };
        assert!(np.applies_to(PolicyType::Ingress));
        assert!(np.applies_to(PolicyType::Egress));
    }

    #[test]
    fn deny_all_and_round_trip() {
        let np = NetworkPolicy::allow_ingress(
            ObjectMeta::named("allow-db").in_namespace("prod"),
            LabelSelector::from_labels(Labels::from_pairs([("app", "db")])),
            vec![NetworkPolicyPeer::pods(LabelSelector::from_labels(
                Labels::from_pairs([("app", "api")]),
            ))],
            vec![PolicyPort::tcp(5432), PolicyPort::tcp_range(30000, 31000)],
        );
        let v = np.encode();
        let back = NetworkPolicy::decode(v.as_map().unwrap()).unwrap();
        assert_eq!(np, back);

        let deny =
            NetworkPolicy::deny_all_ingress(ObjectMeta::named("deny"), LabelSelector::everything());
        let v = deny.encode();
        let back = NetworkPolicy::decode(v.as_map().unwrap()).unwrap();
        assert_eq!(deny, back);
    }
}
