//! Services: virtual IPs, headless DNS records, and their port mappings.

use crate::codec;
use crate::error::{Error, Result};
use crate::meta::{Labels, ObjectMeta};
use crate::pod::Protocol;
use ij_yaml::{Map, Value};
use serde::{Deserialize, Serialize};

/// Service exposure type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ServiceType {
    /// Cluster-internal virtual IP (the default).
    #[default]
    ClusterIp,
    /// ClusterIP plus a port on every node.
    NodePort,
    /// NodePort plus an external load balancer.
    LoadBalancer,
    /// A DNS CNAME, no proxying at all.
    ExternalName,
}

impl ServiceType {
    /// Kubernetes wire spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            ServiceType::ClusterIp => "ClusterIP",
            ServiceType::NodePort => "NodePort",
            ServiceType::LoadBalancer => "LoadBalancer",
            ServiceType::ExternalName => "ExternalName",
        }
    }
}

/// The port a service forwards to: either a number or the *name* of a
/// declared container port. Named targets make M5B subtler: the name may
/// resolve to nothing.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TargetPort {
    /// Forward to this literal port on the pod.
    Number(u16),
    /// Forward to the declared container port with this name.
    Name(String),
}

/// One port mapping of a service.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServicePort {
    /// Optional mapping name (required when a service has several ports).
    pub name: Option<String>,
    /// The port the service itself listens on.
    pub port: u16,
    /// Where traffic is forwarded. Defaults to `port` when omitted.
    pub target_port: TargetPort,
    /// Transport protocol.
    pub protocol: Protocol,
    /// Node port for NodePort/LoadBalancer services.
    pub node_port: Option<u16>,
}

impl ServicePort {
    /// A TCP mapping where the target equals the service port.
    pub fn tcp(port: u16) -> Self {
        ServicePort {
            name: None,
            port,
            target_port: TargetPort::Number(port),
            protocol: Protocol::Tcp,
            node_port: None,
        }
    }

    /// A TCP mapping to a different numeric target.
    pub fn tcp_to(port: u16, target: u16) -> Self {
        ServicePort {
            target_port: TargetPort::Number(target),
            ..ServicePort::tcp(port)
        }
    }

    /// A TCP mapping to a named container port.
    pub fn tcp_to_name(port: u16, target: impl Into<String>) -> Self {
        ServicePort {
            target_port: TargetPort::Name(target.into()),
            ..ServicePort::tcp(port)
        }
    }

    /// Builder-style name.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    pub(crate) fn decode(map: &Map, ctx: &str) -> Result<ServicePort> {
        let port = codec::opt_int(map, "port", ctx)?
            .ok_or_else(|| Error::malformed(format!("missing `{ctx}.port`")))?;
        let port = u16::try_from(port)
            .map_err(|_| Error::malformed(format!("{ctx}.port: {port} out of range")))?;
        let target_port = match map.get("targetPort") {
            None | Some(Value::Null) => TargetPort::Number(port),
            Some(Value::Int(i)) => {
                let t = u16::try_from(*i)
                    .map_err(|_| Error::malformed(format!("{ctx}.targetPort: {i} out of range")))?;
                TargetPort::Number(t)
            }
            Some(Value::Str(s)) => match s.parse::<u16>() {
                Ok(n) => TargetPort::Number(n),
                Err(_) => TargetPort::Name(s.clone()),
            },
            Some(_) => return Err(Error::field(format!("{ctx}.targetPort"), "int or string")),
        };
        let protocol = match codec::opt_str(map, "protocol", ctx)? {
            Some(p) => Protocol::decode(&p, ctx)?,
            None => Protocol::Tcp,
        };
        let node_port = codec::opt_int(map, "nodePort", ctx)?
            .map(|p| {
                u16::try_from(p)
                    .map_err(|_| Error::malformed(format!("{ctx}.nodePort: {p} out of range")))
            })
            .transpose()?;
        Ok(ServicePort {
            name: codec::opt_str(map, "name", ctx)?,
            port,
            target_port,
            protocol,
            node_port,
        })
    }

    pub(crate) fn encode(&self) -> Value {
        let mut m = Map::with_capacity(5);
        if let Some(n) = &self.name {
            m.push_unchecked("name", Value::str(n));
        }
        m.push_unchecked("port", Value::Int(self.port as i64));
        match &self.target_port {
            TargetPort::Number(n) if *n == self.port => {}
            TargetPort::Number(n) => {
                m.push_unchecked("targetPort", Value::Int(*n as i64));
            }
            TargetPort::Name(s) => {
                m.push_unchecked("targetPort", Value::str(s));
            }
        }
        if self.protocol != Protocol::Tcp {
            m.push_unchecked("protocol", Value::str(self.protocol.as_str()));
        }
        if let Some(np) = self.node_port {
            m.push_unchecked("nodePort", Value::Int(np as i64));
        }
        Value::Map(m)
    }
}

/// Service specification.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ServiceSpec {
    /// Exposure type.
    pub service_type: ServiceType,
    /// Equality-based pod selector (services do not support
    /// matchExpressions). Empty means *no* selector — a service without
    /// target (M5D), unless endpoints are managed manually.
    pub selector: Labels,
    /// Port mappings.
    pub ports: Vec<ServicePort>,
    /// `clusterIP: None` marks a headless service, resolved purely via DNS.
    pub headless: bool,
}

/// A Kubernetes Service.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Service {
    /// Metadata.
    pub meta: ObjectMeta,
    /// Specification.
    pub spec: ServiceSpec,
}

impl Service {
    /// Creates a ClusterIP service.
    pub fn cluster_ip(meta: ObjectMeta, selector: Labels, ports: Vec<ServicePort>) -> Self {
        Service {
            meta,
            spec: ServiceSpec {
                service_type: ServiceType::ClusterIp,
                selector,
                ports,
                headless: false,
            },
        }
    }

    /// Creates a headless service.
    pub fn headless(meta: ObjectMeta, selector: Labels, ports: Vec<ServicePort>) -> Self {
        Service {
            meta,
            spec: ServiceSpec {
                service_type: ServiceType::ClusterIp,
                selector,
                ports,
                headless: true,
            },
        }
    }

    /// True for headless services (`clusterIP: None`).
    pub fn is_headless(&self) -> bool {
        self.spec.headless
    }

    /// True when the service has no selector at all (M5D candidate).
    pub fn has_selector(&self) -> bool {
        !self.spec.selector.is_empty()
    }

    pub(crate) fn decode(root: &Map) -> Result<Service> {
        let meta = ObjectMeta::decode(root)?;
        let spec = codec::opt_map(root, "spec", "service")?
            .ok_or_else(|| Error::malformed("missing service `spec`"))?;
        let service_type = match codec::opt_str(spec, "type", "spec")?.as_deref() {
            None | Some("ClusterIP") => ServiceType::ClusterIp,
            Some("NodePort") => ServiceType::NodePort,
            Some("LoadBalancer") => ServiceType::LoadBalancer,
            Some("ExternalName") => ServiceType::ExternalName,
            Some(other) => {
                return Err(Error::malformed(format!(
                    "spec.type: unknown service type `{other}`"
                )))
            }
        };
        let selector = match codec::opt_map(spec, "selector", "spec")? {
            Some(m) => Labels::decode(m, "spec.selector")?,
            None => Labels::new(),
        };
        let headless = matches!(spec.get("clusterIP"), Some(Value::Str(s)) if s == "None")
            || matches!(spec.get("clusterIP"), Some(Value::Null) if spec.contains_key("clusterIP"));
        let mut ports = Vec::new();
        for (i, p) in codec::opt_seq(spec, "ports", "spec")?.iter().enumerate() {
            let pctx = format!("spec.ports[{i}]");
            ports.push(ServicePort::decode(codec::as_map(p, &pctx)?, &pctx)?);
        }
        Ok(Service {
            meta,
            spec: ServiceSpec {
                service_type,
                selector,
                ports,
                headless,
            },
        })
    }

    pub(crate) fn encode(&self) -> Value {
        let mut spec = Map::with_capacity(4);
        if self.spec.service_type != ServiceType::ClusterIp {
            spec.push_unchecked("type", Value::str(self.spec.service_type.as_str()));
        }
        if self.spec.headless {
            spec.push_unchecked("clusterIP", Value::str("None"));
        }
        if !self.spec.selector.is_empty() {
            spec.push_unchecked("selector", self.spec.selector.encode());
        }
        if !self.spec.ports.is_empty() {
            spec.push_unchecked(
                "ports",
                Value::Seq(self.spec.ports.iter().map(ServicePort::encode).collect()),
            );
        }
        let mut m = Map::with_capacity(4);
        m.push_unchecked("apiVersion", Value::str("v1"));
        m.push_unchecked("kind", Value::str("Service"));
        m.push_unchecked("metadata", self.meta.encode());
        m.push_unchecked("spec", Value::Map(spec));
        Value::Map(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_mysql_service() {
        // Mirrors Figure 2b of the paper.
        let src = "\
apiVersion: v1
kind: Service
metadata:
  name: mysql
  labels:
    app.kubernetes.io/part-of: mysql
spec:
  type: ClusterIP
  selector:
    app.kubernetes.io/part-of: mysql
  ports:
    - name: mysql
      port: 3306
      protocol: TCP
";
        let v = ij_yaml::parse(src).unwrap();
        let s = Service::decode(v.as_map().unwrap()).unwrap();
        assert_eq!(s.spec.ports[0].port, 3306);
        assert_eq!(s.spec.ports[0].target_port, TargetPort::Number(3306));
        assert!(!s.is_headless());
        assert!(s.has_selector());
    }

    #[test]
    fn headless_service() {
        let src = "\
apiVersion: v1
kind: Service
metadata:
  name: db-headless
spec:
  clusterIP: None
  selector:
    app: db
  ports:
    - port: 5432
";
        let v = ij_yaml::parse(src).unwrap();
        let s = Service::decode(v.as_map().unwrap()).unwrap();
        assert!(s.is_headless());
    }

    #[test]
    fn named_target_port() {
        let src = "\
apiVersion: v1
kind: Service
metadata:
  name: web
spec:
  selector:
    app: web
  ports:
    - port: 80
      targetPort: http
";
        let v = ij_yaml::parse(src).unwrap();
        let s = Service::decode(v.as_map().unwrap()).unwrap();
        assert_eq!(s.spec.ports[0].target_port, TargetPort::Name("http".into()));
    }

    #[test]
    fn service_without_selector() {
        let src = "\
apiVersion: v1
kind: Service
metadata:
  name: orphan
spec:
  ports:
    - port: 8080
";
        let v = ij_yaml::parse(src).unwrap();
        let s = Service::decode(v.as_map().unwrap()).unwrap();
        assert!(!s.has_selector());
    }

    #[test]
    fn encode_round_trip() {
        let s = Service::headless(
            ObjectMeta::named("thanos-query"),
            Labels::from_pairs([("app", "thanos-query-frontend")]),
            vec![
                ServicePort::tcp_to(9090, 10902).with_name("http"),
                ServicePort::tcp_to_name(10901, "grpc").with_name("grpc"),
            ],
        );
        let v = s.encode();
        let back = Service::decode(v.as_map().unwrap()).unwrap();
        assert_eq!(s, back);
    }
}
