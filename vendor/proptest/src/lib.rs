//! Offline shim for `proptest`.
//!
//! The build environment has no registry access, so this crate implements
//! the subset of proptest the workspace's four property suites use:
//!
//! * [`Strategy`] with `prop_map`, `prop_recursive`, and `boxed`;
//! * strategies for integer ranges, tuples (arity ≤ 8), [`Just`],
//!   [`any`], regex-subset string literals, [`collection::vec`],
//!   [`collection::btree_map`], and [`sample::select`];
//! * the [`proptest!`], [`prop_oneof!`], and `prop_assert*` macros;
//! * [`ProptestConfig`] with `with_cases`, honoring the `PROPTEST_CASES`
//!   environment variable (default 64 cases so `cargo test -q` stays fast).
//!
//! Unlike real proptest there is **no shrinking**: a failing case panics
//! with the case index and the assertion's own message. Generation is fully
//! deterministic — case `i` of a test always sees the same inputs, run to
//! run, matching the workspace's determinism-first design.

use std::rc::Rc;

pub mod collection;
mod regex;
pub mod sample;
pub mod string;

pub use rand::rngs::StdRng as TestRng;
use rand::{Rng, SeedableRng};

/// Deterministic per-case RNG: the same `(case)` index always produces the
/// same stream, so failures reproduce exactly.
pub fn test_rng(case: u64) -> TestRng {
    TestRng::seed_from_u64(0x5eed_cafe_0000_0000 ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// Run-time configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    /// `PROPTEST_CASES` seeds the default (as in real proptest); an explicit
    /// `with_cases` always wins over the environment.
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    pub fn resolved_cases(&self) -> u32 {
        self.cases
    }
}

/// A generator of values of type `Self::Value`.
///
/// Object-safe so strategies can be boxed; combinators require `Sized`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Builds recursive values: at each of `depth` levels, generation picks
    /// uniformly between the leaf strategy and one application of `branch`.
    /// (`_desired_size` / `_expected_branch` shape real proptest's sizing
    /// heuristics; the shim bounds growth by depth alone.)
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let level = branch(current).boxed();
            current = Union::new(vec![leaf.clone(), level]).boxed();
        }
        current
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed strategies (backs `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A `&str` is a regex-subset strategy over `String`s, as in real proptest.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        regex::Pattern::parse(self)
            .unwrap_or_else(|e| panic!("invalid regex strategy {self:?}: {e}"))
            .generate(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

pub mod prelude {
    /// Mirror of real proptest's `prelude::prop` module alias, so suites can
    /// say `prop::collection::vec(...)` after a prelude glob import.
    pub use crate as prop;
    pub use crate::{any, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, Union};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

/// The test-block macro. Each contained `fn name(arg in strategy, ...)`
/// becomes a `#[test]` that runs the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($config:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                let __cases = __config.resolved_cases();
                for __case in 0..u64::from(__cases) {
                    let mut __rng = $crate::test_rng(__case);
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut __rng);)+
                    let __run = || { $body };
                    if let Err(panic) = std::panic::catch_unwind(
                        std::panic::AssertUnwindSafe(__run),
                    ) {
                        eprintln!(
                            "proptest shim: case {}/{} of `{}` failed (deterministic; rerun reproduces it)",
                            __case, __cases, stringify!($name),
                        );
                        std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}
