//! Static extraction: the analyzer's view of a rendered application.

use ij_model::{ContainerPort, Labels, NetworkPolicy, Object, Protocol, Service};

/// A compute unit: a workload's pod template or a bare pod, with everything
/// the static rules need (labels, declared ports, host networking).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComputeUnit {
    /// Qualified name of the defining object (`namespace/name`).
    pub name: String,
    /// Object kind (`Deployment`, `Pod`, …).
    pub kind: String,
    /// Namespace.
    pub namespace: String,
    /// Labels stamped onto the unit's pods.
    pub labels: Labels,
    /// Declared container ports as `(container name, port)` pairs.
    pub declared: Vec<(String, ContainerPort)>,
    /// True when the pod template binds to the host network.
    pub host_network: bool,
}

impl ComputeUnit {
    /// Declared `(port, protocol)` pairs.
    pub fn declared_ports(&self) -> impl Iterator<Item = (u16, Protocol)> + '_ {
        self.declared
            .iter()
            .map(|(_, p)| (p.container_port, p.protocol))
    }

    /// True when `(port, protocol)` is declared on any container.
    pub fn declares(&self, port: u16, protocol: Protocol) -> bool {
        self.declared_ports()
            .any(|(p, pr)| p == port && pr == protocol)
    }

    /// Resolves a declared port name to its number.
    pub fn resolve_port_name(&self, name: &str) -> Option<u16> {
        self.declared
            .iter()
            .find(|(_, p)| p.name.as_deref() == Some(name))
            .map(|(_, p)| p.container_port)
    }
}

/// The static model of one rendered application.
#[derive(Debug, Clone, Default)]
pub struct StaticModel {
    /// Compute units.
    pub units: Vec<ComputeUnit>,
    /// Services.
    pub services: Vec<Service>,
    /// Network policies rendered (i.e. *enabled*) by the chart.
    pub policies: Vec<NetworkPolicy>,
}

impl StaticModel {
    /// Builds the model from rendered objects.
    pub fn from_objects(objects: &[Object]) -> Self {
        let mut model = StaticModel::default();
        for obj in objects {
            match obj {
                Object::Pod(p) => model.units.push(ComputeUnit {
                    name: p.meta.qualified_name(),
                    kind: "Pod".to_string(),
                    namespace: p.meta.namespace.clone(),
                    labels: p.meta.labels.clone(),
                    declared: p
                        .spec
                        .containers
                        .iter()
                        .flat_map(|c| c.ports.iter().map(move |p| (c.name.clone(), p.clone())))
                        .collect(),
                    host_network: p.spec.host_network,
                }),
                Object::Workload(w) => model.units.push(ComputeUnit {
                    name: w.meta.qualified_name(),
                    kind: w.kind.as_str().to_string(),
                    namespace: w.meta.namespace.clone(),
                    labels: w.template.labels.clone(),
                    declared: w
                        .template
                        .spec
                        .containers
                        .iter()
                        .flat_map(|c| c.ports.iter().map(move |p| (c.name.clone(), p.clone())))
                        .collect(),
                    host_network: w.template.spec.host_network,
                }),
                Object::Service(s) => model.services.push(s.clone()),
                Object::NetworkPolicy(n) => model.policies.push(n.clone()),
                Object::Namespace(_) | Object::Opaque { .. } => {}
            }
        }
        model
    }

    /// Units in a namespace whose labels satisfy a service selector.
    pub fn units_selected_by(&self, svc: &Service) -> Vec<&ComputeUnit> {
        if svc.spec.selector.is_empty() {
            return Vec::new();
        }
        self.units
            .iter()
            .filter(|u| {
                u.namespace == svc.meta.namespace && u.labels.contains_all(&svc.spec.selector)
            })
            .collect()
    }

    /// Finds a unit by qualified name.
    pub fn unit(&self, name: &str) -> Option<&ComputeUnit> {
        self.units.iter().find(|u| u.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ij_model::decode_manifests;

    const APP: &str = "\
apiVersion: apps/v1
kind: Deployment
metadata:
  name: web
spec:
  selector:
    matchLabels:
      app: web
  template:
    metadata:
      labels:
        app: web
        tier: front
    spec:
      hostNetwork: true
      containers:
        - name: web
          image: nginx
          ports:
            - name: http
              containerPort: 8080
            - containerPort: 9090
              protocol: UDP
---
apiVersion: v1
kind: Service
metadata:
  name: web
spec:
  selector:
    app: web
  ports:
    - port: 80
      targetPort: http
---
apiVersion: networking.k8s.io/v1
kind: NetworkPolicy
metadata:
  name: lock
spec:
  podSelector: {}
";

    #[test]
    fn builds_units_services_policies() {
        let objects = decode_manifests(APP).unwrap();
        let m = StaticModel::from_objects(&objects);
        assert_eq!(m.units.len(), 1);
        assert_eq!(m.services.len(), 1);
        assert_eq!(m.policies.len(), 1);
        let u = &m.units[0];
        assert_eq!(u.kind, "Deployment");
        assert!(u.host_network);
        assert!(u.declares(8080, Protocol::Tcp));
        assert!(u.declares(9090, Protocol::Udp));
        assert!(!u.declares(9090, Protocol::Tcp));
        assert_eq!(u.resolve_port_name("http"), Some(8080));
        assert_eq!(u.resolve_port_name("nope"), None);
    }

    #[test]
    fn selection_respects_namespace_and_subset() {
        let objects = decode_manifests(APP).unwrap();
        let m = StaticModel::from_objects(&objects);
        let svc = &m.services[0];
        // Selector {app: web} is a subset of the unit labels {app, tier}.
        assert_eq!(m.units_selected_by(svc).len(), 1);
    }
}
