//! The comparison harness (§4.4.2): run every tool and our solution over
//! the representative per-class charts and classify the outcomes.

use crate::tools::{all_tools, Tool};
use ij_chart::Release;
use ij_cluster::{Cluster, ClusterConfig};
use ij_core::{chart_defines_network_policies, Analyzer, MisconfigId, StaticModel};
use ij_datasets::{build_app, representative_charts, CorpusOptions};
use ij_probe::{HostBaseline, RuntimeAnalyzer};
use std::collections::BTreeMap;

/// Table 3 cell values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Detection {
    /// The tool pinpointed the misconfiguration (●).
    Found,
    /// A generic or incomplete signal (◐).
    Partial,
    /// The tool could have seen it but did not (×).
    Missed,
    /// Outside the tool's observational envelope (—).
    NotApplicable,
}

impl Detection {
    /// Table 3 glyph.
    pub fn symbol(&self) -> &'static str {
        match self {
            Detection::Found => "●",
            Detection::Partial => "◐",
            Detection::Missed => "×",
            Detection::NotApplicable => "—",
        }
    }
}

/// Evidence handed to a tool for one case.
pub struct ToolInput<'a> {
    /// Static model of the rendered manifests (for tools that parse them).
    pub statics: &'a StaticModel,
    /// The running cluster (for tools that query the API).
    pub cluster: &'a Cluster,
}

/// One row of Table 3.
#[derive(Debug, Clone)]
pub struct ComparisonRow {
    /// Tool name (or "Our solution").
    pub tool: String,
    /// Version string.
    pub version: String,
    /// Type label.
    pub kind: String,
    /// Per-class outcome, in `MisconfigId::ALL` order.
    pub cells: BTreeMap<MisconfigId, Detection>,
}

impl ComparisonRow {
    /// The cell for one class.
    pub fn cell(&self, id: MisconfigId) -> Detection {
        self.cells.get(&id).copied().unwrap_or(Detection::Missed)
    }
}

/// Runs the full §4.4 comparison: every representative case through every
/// tool, plus our hybrid analyzer, producing the Table 3 matrix.
pub fn run_comparison() -> Vec<ComparisonRow> {
    let cases = representative_charts();
    let opts = CorpusOptions::default();
    let tools = all_tools();
    let mut rows: Vec<ComparisonRow> = tools
        .iter()
        .map(|t| ComparisonRow {
            tool: t.name.to_string(),
            version: t.version.to_string(),
            kind: format!("{:?}", t.kind),
            cells: BTreeMap::new(),
        })
        .collect();
    let mut ours = ComparisonRow {
        tool: "Our solution".to_string(),
        version: "—".to_string(),
        kind: "Hybrid".to_string(),
        cells: BTreeMap::new(),
    };

    for case in &cases {
        // Install every app of the case into one cluster (the M4* case
        // needs both apps co-resident for API-reading tools).
        let builts: Vec<_> = case.apps.iter().map(build_app).collect();
        let mut registry = ij_cluster::BehaviorRegistry::new();
        for b in &builts {
            for (image, behavior) in &b.behaviors {
                registry.register(image.clone(), behavior.clone());
            }
        }
        let mut cluster = Cluster::new(ClusterConfig {
            nodes: 3,
            seed: 9,
            behaviors: registry,
        });
        let baseline = HostBaseline::capture(&cluster);
        let mut objects = Vec::new();
        for b in &builts {
            let rendered = b
                .chart()
                .render(&Release::new(&b.spec.name, "default"))
                .expect("representative charts render");
            cluster.install(&rendered).expect("no admission");
            objects.extend(rendered.objects);
        }
        let statics = StaticModel::from_objects(&objects);
        let runtime = RuntimeAnalyzer::new(opts.probe.clone()).analyze(&mut cluster, &baseline);

        // Baseline tools.
        let input = ToolInput {
            statics: &statics,
            cluster: &cluster,
        };
        for (tool, row) in tools.iter().zip(rows.iter_mut()) {
            row.cells
                .insert(case.id, classify_tool(tool, &input, case.id));
        }

        // Our solution: per-app analysis plus the cluster-wide pass.
        let mut found = Vec::new();
        let mut statics_per_app = Vec::new();
        for b in &builts {
            let rendered = b
                .chart()
                .render(&Release::new(&b.spec.name, "default"))
                .expect("already rendered once");
            let findings = Analyzer::hybrid().analyze_app(
                &b.spec.name,
                &rendered.objects,
                &cluster,
                Some(&runtime),
                chart_defines_network_policies(b.chart()),
            );
            found.extend(findings);
            statics_per_app.push((
                b.spec.name.clone(),
                StaticModel::from_objects(&rendered.objects),
            ));
        }
        found.extend(Analyzer::hybrid().analyze_global(&statics_per_app));
        let hit = found.iter().any(|f| f.id == case.id);
        ours.cells.insert(
            case.id,
            if hit {
                Detection::Found
            } else {
                Detection::Missed
            },
        );
    }

    rows.push(ours);
    rows
}

fn classify_tool(tool: &Tool, input: &ToolInput<'_>, case_id: MisconfigId) -> Detection {
    if tool.not_applicable(case_id) {
        return Detection::NotApplicable;
    }
    tool.run(input)
        .into_iter()
        .find(|(id, _)| *id == case_id)
        .map(|(_, d)| d)
        .unwrap_or(Detection::Missed)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 3 of the paper, verbatim, in `MisconfigId::ALL` column order.
    /// F = found, P = partial, M = missed, N = not applicable.
    /// One deliberate difference: the paper scores its own M3 as *partial*
    /// because real probes can miss traffic-triggered listeners; the
    /// simulator has no such listeners, so our M3 lands as fully found
    /// (documented in EXPERIMENTS.md).
    const EXPECTED: [(&str, [char; 13]); 12] = [
        (
            "Checkov",
            [
                'N', 'N', 'N', 'M', 'M', 'M', 'N', 'N', 'M', 'M', 'M', 'F', 'F',
            ],
        ),
        (
            "Kubeaudit",
            [
                'N', 'N', 'N', 'M', 'M', 'M', 'N', 'N', 'M', 'M', 'M', 'F', 'F',
            ],
        ),
        (
            "KubeLinter",
            [
                'N', 'N', 'N', 'M', 'M', 'M', 'N', 'N', 'M', 'M', 'F', 'M', 'F',
            ],
        ),
        (
            "Kube-score",
            [
                'N', 'N', 'N', 'M', 'M', 'M', 'N', 'N', 'M', 'M', 'F', 'F', 'M',
            ],
        ),
        (
            "Kubesec",
            [
                'N', 'N', 'N', 'M', 'M', 'M', 'N', 'N', 'M', 'M', 'M', 'M', 'F',
            ],
        ),
        (
            "SLI-KUBE",
            [
                'N', 'N', 'N', 'M', 'M', 'M', 'N', 'N', 'M', 'M', 'M', 'M', 'F',
            ],
        ),
        (
            "Kube-bench",
            [
                'M', 'M', 'M', 'M', 'M', 'M', 'N', 'M', 'M', 'M', 'M', 'M', 'F',
            ],
        ),
        (
            "Kubescape",
            [
                'M', 'M', 'M', 'P', 'P', 'P', 'M', 'M', 'M', 'M', 'M', 'F', 'F',
            ],
        ),
        (
            "Trivy",
            [
                'M', 'M', 'M', 'M', 'M', 'M', 'M', 'M', 'M', 'M', 'M', 'M', 'F',
            ],
        ),
        (
            "NeuVector",
            [
                'M', 'M', 'M', 'M', 'M', 'M', 'M', 'M', 'M', 'M', 'M', 'M', 'F',
            ],
        ),
        (
            "StackRox",
            [
                'M', 'M', 'M', 'M', 'M', 'M', 'M', 'M', 'M', 'M', 'M', 'M', 'F',
            ],
        ),
        (
            "Our solution",
            [
                'F', 'F', 'F', 'F', 'F', 'F', 'F', 'F', 'F', 'F', 'F', 'F', 'F',
            ],
        ),
    ];

    fn to_detection(c: char) -> Detection {
        match c {
            'F' => Detection::Found,
            'P' => Detection::Partial,
            'M' => Detection::Missed,
            'N' => Detection::NotApplicable,
            _ => unreachable!(),
        }
    }

    #[test]
    fn comparison_reproduces_table3() {
        let rows = run_comparison();
        assert_eq!(rows.len(), 12);
        for ((name, expected), row) in EXPECTED.iter().zip(&rows) {
            assert_eq!(&row.tool, name);
            for (id, want) in MisconfigId::ALL.iter().zip(expected) {
                assert_eq!(row.cell(*id), to_detection(*want), "{name} on {id}");
            }
        }
    }

    #[test]
    fn symbols() {
        assert_eq!(Detection::Found.symbol(), "●");
        assert_eq!(Detection::Partial.symbol(), "◐");
        assert_eq!(Detection::Missed.symbol(), "×");
        assert_eq!(Detection::NotApplicable.symbol(), "—");
    }
}
