//! End-to-end determinism smoke test.
//!
//! The whole evaluation is specified to be a pure function of the seed
//! (ROADMAP / crate docs), so two censuses over the same specs and options
//! must agree *byte for byte* — not just in finding counts, but in every
//! `Census` and `AppReport` field, including the ephemeral port numbers the
//! probe observes. This is the cheap canary for any future nondeterminism
//! (parallelism, hash-map ordering, time-dependent logic) sneaking into the
//! pipeline.

use inside_job::datasets::{
    run_census, AppSpec, CensusPipeline, CorpusOptions, NetpolSpec, Org, Plan,
};

/// A small corpus that still exercises the interesting machinery: runtime
/// deltas (M1/M2 incl. seeded ephemeral ports), label collisions, service
/// references, a cluster-wide M4* pair, hostNetwork, and a policy posture.
fn small_specs() -> Vec<AppSpec> {
    vec![
        AppSpec::new(
            "smoke-alpha",
            Org::Cncf,
            "1.0.0",
            Plan {
                m1: 2,
                m2: 1,
                m3: 1,
                m4a: 1,
                m7: 1,
                netpol: NetpolSpec::Missing,
                m4star_tokens: vec!["smoke-shared"],
                ..Default::default()
            },
        ),
        AppSpec::new(
            "smoke-beta",
            Org::Cncf,
            "1.0.0",
            Plan {
                m2: 1,
                m5a: 1,
                m5b: 1,
                m5d: 1,
                netpol: NetpolSpec::DefinedDisabled { loose: true },
                m4star_tokens: vec!["smoke-shared"],
                ..Default::default()
            },
        ),
        AppSpec::new("smoke-gamma", Org::Cncf, "1.0.0", Plan::clean()),
    ]
}

#[test]
fn same_seed_census_is_byte_identical() {
    let specs = small_specs();
    let opts = CorpusOptions {
        seed: 7,
        ..Default::default()
    };
    let first = run_census(&specs, &opts).expect("smoke corpus runs");
    let second = run_census(&specs, &opts).expect("smoke corpus runs");

    // Per-app first so a regression names the offending application…
    assert_eq!(first.apps.len(), second.apps.len());
    for (a, b) in first.apps.iter().zip(second.apps.iter()) {
        assert_eq!(
            format!("{a:#?}"),
            format!("{b:#?}"),
            "AppReport for {} differs between identical runs",
            a.app
        );
    }
    // …then the whole census, byte for byte.
    assert_eq!(
        format!("{first:#?}"),
        format!("{second:#?}"),
        "Census output differs between identical runs"
    );
}

#[test]
fn different_seed_keeps_finding_structure() {
    // Complement of the byte-identity test: the seed feeds only the
    // runtime's ephemeral draws, so a different seed must still produce the
    // same findings app by app (classes never depend on which port the OS
    // happened to assign).
    let specs = small_specs();
    let a = run_census(
        &specs,
        &CorpusOptions {
            seed: 7,
            ..Default::default()
        },
    )
    .expect("smoke corpus runs");
    let b = run_census(
        &specs,
        &CorpusOptions {
            seed: 1337,
            ..Default::default()
        },
    )
    .expect("smoke corpus runs");
    for (x, y) in a.apps.iter().zip(b.apps.iter()) {
        assert_eq!(x.findings, y.findings, "findings diverged for {}", x.app);
    }
}

#[test]
fn threaded_census_is_byte_identical_to_sequential() {
    // Same byte-identity bar as the same-seed test, but across thread
    // counts: worker scheduling must never leak into the census.
    let specs = small_specs();
    let sequential = CensusPipeline::builder()
        .seed(7)
        .build()
        .run(&specs)
        .expect("smoke corpus runs");
    for threads in [2, 4] {
        let parallel = CensusPipeline::builder()
            .seed(7)
            .threads(threads)
            .build()
            .run(&specs)
            .expect("smoke corpus runs");
        assert_eq!(
            format!("{sequential:#?}"),
            format!("{parallel:#?}"),
            "threads({threads}) census differs from the sequential run"
        );
    }
}
