//! Loading charts from disk, Helm layout:
//!
//! ```text
//! mychart/
//!   Chart.yaml        # name, version, description, dependencies
//!   values.yaml       # defaults
//!   templates/**      # templates, recursively (rendered in sorted order)
//!   charts/<dep>/     # unpacked subcharts
//! ```
//!
//! Template directories are walked recursively, so Helm conventions like
//! `templates/tests/…` load with their relative path as the template name.
//! Non-template files (`NOTES.txt`, `.helmignore`, …) are tolerated and
//! skipped. Everything unsupported surfaces as a typed
//! [`IngestError`](crate::IngestError) carrying the offending path —
//! loading never panics on wild input.
//!
//! Dependency conditions come from `Chart.yaml`'s `dependencies:` entries
//! (`name` + optional `condition`), matching unpacked directories under
//! `charts/`. Packed archives (`charts/*.tgz`) are rejected with a typed
//! error instead of being silently ignored.

use crate::chart::{Chart, Dependency};
use crate::error::{Error, IngestError, Result};
use std::fs;
use std::path::{Path, PathBuf};

/// Reads a file that must be UTF-8 text, mapping failures to typed errors.
fn read_text(path: &Path) -> std::result::Result<String, IngestError> {
    let bytes = fs::read(path).map_err(|e| IngestError::Io {
        path: path.to_path_buf(),
        message: e.to_string(),
    })?;
    String::from_utf8(bytes).map_err(|_| IngestError::NonUtf8File {
        path: path.to_path_buf(),
    })
}

/// Collects template files under `dir` recursively, returning
/// `(relative name with '/' separators, absolute path)` pairs.
fn collect_templates(
    root: &Path,
    dir: &Path,
    prefix: &str,
    out: &mut Vec<(String, PathBuf)>,
) -> std::result::Result<(), IngestError> {
    let entries = fs::read_dir(dir).map_err(|e| IngestError::Io {
        path: dir.to_path_buf(),
        message: e.to_string(),
    })?;
    let mut entries: Vec<_> = entries.filter_map(|e| e.ok()).map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        let Some(file_name) = path.file_name().map(|n| n.to_string_lossy().into_owned()) else {
            continue;
        };
        let rel = if prefix.is_empty() {
            file_name.clone()
        } else {
            format!("{prefix}/{file_name}")
        };
        if path.is_dir() {
            collect_templates(root, &path, &rel, out)?;
        } else if path
            .extension()
            .is_some_and(|ext| ext == "yaml" || ext == "yml" || ext == "tpl")
        {
            out.push((rel, path));
        }
        // Anything else (NOTES.txt, .helmignore, licenses) is tolerated.
    }
    let _ = root;
    Ok(())
}

impl Chart {
    /// Loads a chart directory (recursively including `charts/` subcharts).
    ///
    /// Failures are typed: a missing `Chart.yaml`, an empty `templates/`
    /// directory, non-UTF-8 files, packed `charts/*.tgz` archives, and
    /// unparseable metadata each map to a distinct
    /// [`IngestError`](crate::IngestError) variant naming the offending
    /// path (surfaced through [`Error::Ingest`]).
    pub fn from_dir(dir: &Path) -> Result<Chart> {
        if !dir.is_dir() {
            return Err(Error::Ingest(IngestError::NotADirectory {
                path: dir.to_path_buf(),
            }));
        }

        // Chart.yaml
        let meta_path = dir.join("Chart.yaml");
        if !meta_path.is_file() {
            return Err(Error::Ingest(IngestError::MissingChartYaml {
                path: meta_path,
            }));
        }
        let meta_src = read_text(&meta_path)?;
        let meta = ij_yaml::parse(&meta_src).map_err(|e| IngestError::InvalidChartYaml {
            path: meta_path.clone(),
            source: e,
        })?;
        let name = meta
            .get("name")
            .and_then(ij_yaml::Value::as_str)
            .map(str::to_string)
            .or_else(|| dir.file_name().map(|n| n.to_string_lossy().into_owned()))
            .ok_or_else(|| Error::Values("chart has no name".into()))?;
        let version = meta
            .get("version")
            .map(|v| v.render_scalar())
            .unwrap_or_else(|| "0.1.0".to_string());
        let description = meta
            .get("description")
            .map(|v| v.render_scalar())
            .unwrap_or_default();

        // values.yaml (optional)
        let values_path = dir.join("values.yaml");
        let values = if values_path.exists() {
            let src = read_text(&values_path)?;
            ij_yaml::parse(&src).map_err(|e| IngestError::InvalidValuesYaml {
                path: values_path.clone(),
                source: e,
            })?
        } else {
            ij_yaml::Value::Map(ij_yaml::Map::new())
        };

        // templates/**, walked recursively and sorted by relative name so
        // the render order is deterministic across platforms.
        let mut templates = Vec::new();
        let tpl_dir = dir.join("templates");
        if tpl_dir.is_dir() {
            let mut found = Vec::new();
            collect_templates(&tpl_dir, &tpl_dir, "", &mut found)?;
            if found.is_empty() {
                return Err(Error::Ingest(IngestError::EmptyTemplates { path: tpl_dir }));
            }
            found.sort();
            for (rel_name, path) in found {
                // `_helpers.tpl`-style partial files are loaded too: the
                // renderer skips them for output but their `define` blocks
                // are visible to every template of the chart.
                let src = read_text(&path)?;
                templates.push((rel_name, crate::TemplateSource::Text(src)));
            }
        }

        // charts/<dep>/ subcharts, with conditions from Chart.yaml.
        let mut dependencies = Vec::new();
        let charts_dir = dir.join("charts");
        if charts_dir.is_dir() {
            let declared: Vec<(String, Option<String>)> = meta
                .get("dependencies")
                .and_then(ij_yaml::Value::as_seq)
                .map(|deps| {
                    deps.iter()
                        .filter_map(|d| {
                            let name = d.get("name")?.as_str()?.to_string();
                            let condition = d
                                .get("condition")
                                .and_then(ij_yaml::Value::as_str)
                                .map(str::to_string);
                            Some((name, condition))
                        })
                        .collect()
                })
                .unwrap_or_default();
            let mut sub_entries: Vec<_> = fs::read_dir(&charts_dir)
                .map_err(|e| IngestError::Io {
                    path: charts_dir.clone(),
                    message: e.to_string(),
                })?
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .collect();
            sub_entries.sort();
            for sub in sub_entries {
                if sub.is_dir() {
                    let chart = Chart::from_dir(&sub)?;
                    let condition = declared
                        .iter()
                        .find(|(n, _)| *n == chart.name)
                        .and_then(|(_, c)| c.clone());
                    dependencies.push(Dependency { chart, condition });
                } else if sub
                    .extension()
                    .is_some_and(|ext| ext == "tgz" || ext == "tar")
                {
                    return Err(Error::Ingest(IngestError::PackedSubchart { path: sub }));
                }
                // Other stray files under charts/ are tolerated.
            }
        }

        Ok(Chart {
            name,
            version,
            description,
            values,
            templates,
            dependencies,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chart::Release;
    use std::path::PathBuf;

    fn write(path: &Path, content: &str) {
        fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        fs::write(path, content).expect("write");
    }

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ij-chart-test-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("mkdir scratch");
        dir
    }

    /// Unwraps the `Ingest` variant or fails the test.
    fn ingest_err(result: Result<Chart>) -> IngestError {
        match result {
            Err(Error::Ingest(e)) => e,
            Err(other) => panic!("expected an ingest error, got {other}"),
            Ok(_) => panic!("expected an ingest error, chart loaded"),
        }
    }

    #[test]
    fn loads_chart_with_subchart_and_condition() {
        let dir = scratch("load");
        write(
            &dir.join("Chart.yaml"),
            "\
name: parent
version: 1.2.3
description: test chart
dependencies:
  - name: child
    condition: child.enabled
",
        );
        write(
            &dir.join("values.yaml"),
            "replicas: 2\nchild:\n  enabled: false\n",
        );
        write(
            &dir.join("templates/00-deploy.yaml"),
            "\
apiVersion: apps/v1
kind: Deployment
metadata:
  name: {{ .Release.Name }}-app
spec:
  replicas: {{ .Values.replicas }}
  selector:
    matchLabels:
      app: parent
  template:
    metadata:
      labels:
        app: parent
    spec:
      containers:
        - name: app
          image: img/app
",
        );
        write(
            &dir.join("templates/_helpers.tpl"),
            "{{ define \"parent.labels\" }}app: parent{{ end }}",
        );
        write(
            &dir.join("charts/child/Chart.yaml"),
            "name: child\nversion: 0.1.0\n",
        );
        write(&dir.join("charts/child/values.yaml"), "port: 9000\n");
        write(
            &dir.join("charts/child/templates/svc.yaml"),
            "\
apiVersion: v1
kind: Service
metadata:
  name: {{ .Release.Name }}-child
spec:
  selector:
    app: child
  ports:
    - port: {{ .Values.port }}
",
        );

        let chart = Chart::from_dir(&dir).expect("loads");
        assert_eq!(chart.name, "parent");
        assert_eq!(chart.version, "1.2.3");
        assert_eq!(
            chart.templates.len(),
            2,
            "_helpers.tpl loaded for its defines"
        );
        assert_eq!(chart.dependencies.len(), 1);
        assert_eq!(
            chart.dependencies[0].condition.as_deref(),
            Some("child.enabled")
        );

        // Condition off by default.
        let rendered = chart
            .render(&Release::new("r", "default"))
            .expect("renders");
        assert_eq!(rendered.objects.len(), 1);

        // Enable the child via overrides.
        let rel = Release::new("r", "default")
            .with_values_yaml("child:\n  enabled: true\n")
            .unwrap();
        let rendered = chart.render(&rel).expect("renders");
        assert_eq!(rendered.objects.len(), 2);
        let svc = rendered.of_kind("Service").next().expect("child service");
        assert_eq!(svc.meta().name, "r-child");

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_chart_yaml_is_a_typed_error_with_path() {
        let dir = scratch("missing");
        match ingest_err(Chart::from_dir(&dir)) {
            IngestError::MissingChartYaml { path } => {
                assert_eq!(path, dir.join("Chart.yaml"));
            }
            other => panic!("expected MissingChartYaml, got {other}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn nonexistent_path_is_not_a_directory() {
        let dir = scratch("no-dir").join("definitely-absent");
        match ingest_err(Chart::from_dir(&dir)) {
            IngestError::NotADirectory { path } => assert_eq!(path, dir),
            other => panic!("expected NotADirectory, got {other}"),
        }
    }

    #[test]
    fn chart_without_values_or_templates_loads_empty() {
        let dir = scratch("empty");
        write(&dir.join("Chart.yaml"), "name: bare\nversion: 0.0.1\n");
        let chart = Chart::from_dir(&dir).expect("loads");
        assert_eq!(chart.name, "bare");
        assert!(chart.templates.is_empty());
        let rendered = chart
            .render(&Release::new("r", "default"))
            .expect("renders");
        assert!(rendered.objects.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_templates_directory_is_a_typed_error() {
        let dir = scratch("empty-tpl");
        write(&dir.join("Chart.yaml"), "name: hollow\nversion: 0.0.1\n");
        fs::create_dir_all(dir.join("templates")).expect("mkdir templates");
        match ingest_err(Chart::from_dir(&dir)) {
            IngestError::EmptyTemplates { path } => {
                assert_eq!(path, dir.join("templates"));
            }
            other => panic!("expected EmptyTemplates, got {other}"),
        }
        // Non-template files alone do not make the directory non-empty.
        write(&dir.join("templates/NOTES.txt"), "thanks for installing\n");
        assert!(matches!(
            ingest_err(Chart::from_dir(&dir)),
            IngestError::EmptyTemplates { .. }
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn non_utf8_template_is_a_typed_error_with_path() {
        let dir = scratch("binary");
        write(&dir.join("Chart.yaml"), "name: bin\nversion: 0.0.1\n");
        let bad = dir.join("templates/garbage.yaml");
        fs::create_dir_all(bad.parent().unwrap()).unwrap();
        fs::write(&bad, [0xff, 0xfe, 0x00, 0x80]).unwrap();
        match ingest_err(Chart::from_dir(&dir)) {
            IngestError::NonUtf8File { path } => assert_eq!(path, bad),
            other => panic!("expected NonUtf8File, got {other}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn non_utf8_values_is_a_typed_error_with_path() {
        let dir = scratch("binary-values");
        write(&dir.join("Chart.yaml"), "name: bin\nversion: 0.0.1\n");
        fs::write(dir.join("values.yaml"), [0xc0, 0x01]).unwrap();
        assert!(matches!(
            ingest_err(Chart::from_dir(&dir)),
            IngestError::NonUtf8File { .. }
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn invalid_metadata_yaml_is_a_typed_error() {
        let dir = scratch("bad-meta");
        write(&dir.join("Chart.yaml"), "name: x\n  dangling: indent\n");
        assert!(matches!(
            ingest_err(Chart::from_dir(&dir)),
            IngestError::InvalidChartYaml { .. }
        ));

        write(&dir.join("Chart.yaml"), "name: x\nversion: 0.0.1\n");
        write(&dir.join("values.yaml"), "a: &anchor\n  b: 1\n");
        match ingest_err(Chart::from_dir(&dir)) {
            IngestError::InvalidValuesYaml { path, source } => {
                assert_eq!(path, dir.join("values.yaml"));
                assert!(source.to_string().contains("anchor"), "{source}");
            }
            other => panic!("expected InvalidValuesYaml, got {other}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn packed_subchart_archive_is_a_typed_error() {
        let dir = scratch("packed");
        write(&dir.join("Chart.yaml"), "name: parent\nversion: 0.0.1\n");
        let tgz = dir.join("charts/common-1.0.0.tgz");
        fs::create_dir_all(tgz.parent().unwrap()).unwrap();
        fs::write(&tgz, [0x1f, 0x8b, 0x08, 0x00]).unwrap();
        match ingest_err(Chart::from_dir(&dir)) {
            IngestError::PackedSubchart { path } => assert_eq!(path, tgz),
            other => panic!("expected PackedSubchart, got {other}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn template_subdirectories_load_recursively_with_relative_names() {
        let dir = scratch("recursive");
        write(&dir.join("Chart.yaml"), "name: deep\nversion: 0.0.1\n");
        write(
            &dir.join("templates/svc.yaml"),
            "\
apiVersion: v1
kind: Service
metadata:
  name: {{ .Release.Name }}-svc
spec:
  selector:
    app: deep
  ports:
    - port: 80
",
        );
        write(
            &dir.join("templates/tests/test-connection.yaml"),
            "\
apiVersion: v1
kind: Pod
metadata:
  name: {{ .Release.Name }}-test
spec:
  containers:
    - name: probe
      image: busybox
",
        );
        write(&dir.join("templates/NOTES.txt"), "notes are skipped\n");
        let chart = Chart::from_dir(&dir).expect("loads");
        let names: Vec<&str> = chart.templates.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["svc.yaml", "tests/test-connection.yaml"]);
        let rendered = chart
            .render(&Release::new("r", "default"))
            .expect("renders");
        assert_eq!(rendered.objects.len(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn partials_in_subdirectories_are_partial_only() {
        let dir = scratch("subdir-partial");
        write(&dir.join("Chart.yaml"), "name: p\nversion: 0.0.1\n");
        write(
            &dir.join("templates/library/_labels.tpl"),
            "{{ define \"p.labels\" }}app: p{{ end }}",
        );
        write(
            &dir.join("templates/svc.yaml"),
            "\
apiVersion: v1
kind: Service
metadata:
  name: {{ .Release.Name }}
spec:
  selector:{{ include \"p.labels\" . | nindent 4 }}
  ports:
    - port: 80
",
        );
        let chart = Chart::from_dir(&dir).expect("loads");
        let rendered = chart
            .render(&Release::new("r", "default"))
            .expect("renders");
        // The underscore-basename file contributes only its defines.
        assert_eq!(rendered.objects.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
