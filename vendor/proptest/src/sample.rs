//! `sample::select`: uniform choice from a fixed set of values.

use crate::{Strategy, TestRng};
use rand::Rng;

pub struct Select<T: Clone> {
    options: Vec<T>,
}

pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "sample::select needs options");
    Select { options }
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].clone()
    }
}
