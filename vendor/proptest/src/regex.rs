//! A generator for the regex subset the workspace's suites use: sequences
//! of literals and character classes (with ranges and `\n`/`\t`/`\\`
//! escapes), each optionally quantified by `{n}`, `{n,m}`, `?`, `+`, or `*`.
//! Anchors, groups, alternation, and backreferences are out of scope — the
//! parser rejects them loudly rather than generating wrong strings.

use crate::TestRng;
use rand::Rng;

/// One generating unit: a set of candidate chars and a repetition range.
struct Atom {
    chars: Vec<char>,
    min: u32,
    max: u32,
}

pub struct Pattern {
    atoms: Vec<Atom>,
}

impl Pattern {
    pub fn parse(pattern: &str) -> Result<Pattern, String> {
        let mut chars = pattern.chars().peekable();
        let mut atoms = Vec::new();
        while let Some(c) = chars.next() {
            let candidates = match c {
                '[' => parse_class(&mut chars)?,
                '\\' => {
                    let esc = chars
                        .next()
                        .ok_or_else(|| "trailing backslash".to_string())?;
                    vec![unescape(esc)?]
                }
                '.' => (' '..='~').collect(),
                '(' | ')' | '|' | '^' | '$' => {
                    return Err(format!("unsupported regex construct {c:?}"));
                }
                other => vec![other],
            };
            let (min, max) = parse_quantifier(&mut chars)?;
            atoms.push(Atom {
                chars: candidates,
                min,
                max,
            });
        }
        Ok(Pattern { atoms })
    }

    pub fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in &self.atoms {
            let count = rng.gen_range(atom.min..=atom.max);
            for _ in 0..count {
                let idx = rng.gen_range(0..atom.chars.len());
                out.push(atom.chars[idx]);
            }
        }
        out
    }
}

fn unescape(c: char) -> Result<char, String> {
    Ok(match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        '\\' | '-' | ']' | '[' | '.' | '/' | '{' | '}' | '(' | ')' | '?' | '*' | '+' | '|'
        | '^' | '$' | ' ' => c,
        other => return Err(format!("unsupported escape \\{other}")),
    })
}

/// Parses the interior of `[...]` (opening bracket already consumed).
fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<Vec<char>, String> {
    let mut members: Vec<char> = Vec::new();
    let mut pending: Option<char> = None;
    loop {
        let c = chars
            .next()
            .ok_or_else(|| "unterminated character class".to_string())?;
        match c {
            ']' => {
                if let Some(p) = pending {
                    members.push(p);
                }
                break;
            }
            '-' => {
                // A range if we hold a left endpoint and a right endpoint
                // follows; a literal '-' at the start or end of the class.
                match (pending.take(), chars.peek()) {
                    (Some(lo), Some(&next)) if next != ']' => {
                        let hi = match chars.next().unwrap() {
                            '\\' => unescape(
                                chars
                                    .next()
                                    .ok_or_else(|| "trailing backslash".to_string())?,
                            )?,
                            other => other,
                        };
                        if lo > hi {
                            return Err(format!("inverted range {lo:?}-{hi:?}"));
                        }
                        members.extend(lo..=hi);
                    }
                    (lo, _) => {
                        if let Some(lo) = lo {
                            members.push(lo);
                        }
                        members.push('-');
                    }
                }
            }
            '\\' => {
                if let Some(p) = pending.replace(unescape(
                    chars
                        .next()
                        .ok_or_else(|| "trailing backslash".to_string())?,
                )?) {
                    members.push(p);
                }
            }
            other => {
                if let Some(p) = pending.replace(other) {
                    members.push(p);
                }
            }
        }
    }
    if members.is_empty() && pending.is_none() {
        return Err("empty character class".to_string());
    }
    members.sort_unstable();
    members.dedup();
    Ok(members)
}

fn parse_quantifier(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
) -> Result<(u32, u32), String> {
    match chars.peek() {
        Some('{') => {
            chars.next();
            let mut body = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    let (min, max) = match body.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse().map_err(|e| format!("bad bound: {e}"))?,
                            hi.trim().parse().map_err(|e| format!("bad bound: {e}"))?,
                        ),
                        None => {
                            let n = body.trim().parse().map_err(|e| format!("bad bound: {e}"))?;
                            (n, n)
                        }
                    };
                    if min > max {
                        return Err(format!("inverted quantifier {{{body}}}"));
                    }
                    return Ok((min, max));
                }
                body.push(c);
            }
            Err("unterminated {} quantifier".to_string())
        }
        Some('?') => {
            chars.next();
            Ok((0, 1))
        }
        Some('*') => {
            chars.next();
            Ok((0, 8))
        }
        Some('+') => {
            chars.next();
            Ok((1, 8))
        }
        _ => Ok((1, 1)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_rng;

    fn gen_many(pattern: &str) -> Vec<String> {
        let p = Pattern::parse(pattern).expect("parse");
        (0..200u64).map(|i| p.generate(&mut test_rng(i))).collect()
    }

    #[test]
    fn class_with_ranges_and_escapes() {
        for s in gen_many("[ -~\\n\\t]{0,40}") {
            assert!(s.len() <= 40);
            assert!(s
                .chars()
                .all(|c| (' '..='~').contains(&c) || c == '\n' || c == '\t'));
        }
    }

    #[test]
    fn trailing_dash_is_literal() {
        let allowed = |c: char| c.is_ascii_alphanumeric() || "_./-".contains(c);
        for s in gen_many("[a-zA-Z][a-zA-Z0-9_./-]{0,18}") {
            assert!(!s.is_empty() && s.len() <= 19);
            assert!(s.chars().next().unwrap().is_ascii_alphabetic());
            assert!(s.chars().all(allowed), "bad string {s:?}");
        }
    }

    #[test]
    fn exact_repetition() {
        for s in gen_many("[ab]{3}") {
            assert_eq!(s.len(), 3);
            assert!(s.chars().all(|c| c == 'a' || c == 'b'));
        }
    }

    #[test]
    fn rejects_unsupported_constructs() {
        assert!(Pattern::parse("(a|b)").is_err());
        assert!(Pattern::parse("[abc").is_err());
    }
}
