//! # ij-core — the hybrid network-misconfiguration analyzer
//!
//! The paper's primary contribution: a solution that takes a Helm chart,
//! performs **static analysis** (parsing the rendered YAML for container
//! ports, service ports, labels, and selectors) and **runtime analysis**
//! (installing the application into an empty cluster and observing its
//! behaviour), then evaluates the combined evidence against machine-readable
//! rules for the thirteen misconfiguration classes of Table 1:
//!
//! | family | classes | evidence |
//! |---|---|---|
//! | port deltas | M1, M2, M3 | declaration ⟷ runtime sockets |
//! | label collisions | M4A, M4B, M4C, M4\* | labels & selectors (M4\* cluster-wide) |
//! | service references | M5A, M5B, M5C, M5D | service ports ⟷ declarations ⟷ runtime |
//! | isolation | M6, M7 | NetworkPolicies, hostNetwork |
//!
//! The typical flow mirrors §4.2 of the paper:
//!
//! ```
//! use ij_chart::{Chart, Release};
//! use ij_cluster::{Cluster, ClusterConfig};
//! use ij_core::{chart_defines_network_policies, Analyzer};
//! use ij_probe::{HostBaseline, RuntimeAnalyzer};
//!
//! let chart = Chart::builder("demo")
//!     .template("pod.yaml", "\
//! apiVersion: v1
//! kind: Pod
//! metadata:
//!   name: demo
//!   labels:
//!     app: demo
//! spec:
//!   containers:
//!     - name: demo
//!       image: demo/app
//!       ports:
//!         - containerPort: 8080
//! ")
//!     .build();
//!
//! // Fresh cluster per application (§4.2.1), baseline before install.
//! let mut cluster = Cluster::new(ClusterConfig::default());
//! let baseline = HostBaseline::capture(&cluster);
//! let rendered = chart.render(&Release::new("demo", "default")).unwrap();
//! cluster.install(&rendered).unwrap();
//!
//! // Runtime analysis: two observation passes around a restart.
//! let runtime = RuntimeAnalyzer::default().analyze(&mut cluster, &baseline);
//!
//! // Rule evaluation.
//! let findings = Analyzer::hybrid().analyze_app(
//!     "demo",
//!     &rendered.objects,
//!     &cluster,
//!     Some(&runtime),
//!     chart_defines_network_policies(&chart),
//! );
//! // The well-behaved demo app only lacks network policies (M6).
//! assert_eq!(findings.len(), 1);
//! assert_eq!(findings[0].id, ij_core::MisconfigId::M6);
//! ```
//!
//! ## The rule registry
//!
//! The analyzer evaluates its rules by iterating a [`RuleRegistry`] rather
//! than a hardcoded call list: every rule of Table 1 is a named entry
//! ([`RuleRegistry::standard`] registers `m1`–`m7` plus the cluster-wide
//! `m4star`), individually enable/disable-able for per-rule ablations, and
//! custom rules can be registered next to the built-in ones:
//!
//! ```
//! use ij_core::Analyzer;
//!
//! // Per-rule ablation: everything except hostNetwork checks.
//! let quiet = Analyzer::hybrid().without_rule("m7");
//! assert!(!quiet.registry.is_enabled("m7"));
//! assert!(quiet.registry.is_enabled("m1"));
//! ```

mod compact;
mod disclosure;
mod engine;
mod finding;
pub mod lang;
mod model;
mod registry;
mod report;
mod rules;
mod symtab;

pub use compact::{
    m4_global_collisions_compact, sort_canonical_compact, CompactAppReport, CompactCensus,
    CompactFinding, GlobalAppModel, GlobalService, GlobalUnit,
};
pub use disclosure::{disclosure_report, questionnaire, THREAT_MODEL};
pub use engine::{chart_defines_network_policies, Analyzer, AnalyzerOptions};
pub use finding::{sort_canonical, Finding, MisconfigId, Severity};
pub use lang::{CompiledRule, LangError, RulePack, TraceAtom, BUILTIN_PACK_SOURCE};
pub use model::{ComputeUnit, StaticModel};
pub use registry::{
    AppRule, GlobalRule, RuleEntry, RuleOrigin, RuleRegistry, RuleScope, UnknownRule,
};
pub use report::{AppReport, Census, ConcentrationStats, DatasetRow};
pub use rules::{m4_global_collisions, RuleContext};
pub use symtab::{Sym, SymbolTable};
