//! Quickstart: analyze a Helm chart for network misconfigurations.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Builds a small chart (with a few deliberate mistakes), installs it into a
//! fresh simulated cluster, runs the hybrid analyzer, and prints every
//! finding with its severity and mitigation.

use inside_job::chart::{Chart, Release};
use inside_job::cluster::{
    BehaviorRegistry, Cluster, ClusterConfig, ContainerBehavior, ListenerSpec,
};
use inside_job::core::{chart_defines_network_policies, Analyzer};
use inside_job::probe::{HostBaseline, RuntimeAnalyzer};

fn main() {
    // A chart resembling Figure 1 of the paper: the container declares
    // ports 6121/6123/8081, but the application actually listens on 6123,
    // 8081, and an ephemeral port — and a second service goes to a port
    // nothing declares.
    let chart = Chart::builder("flink")
        .version("1.17.0")
        .values_yaml("replicas: 1\n")
        .expect("values parse")
        .template(
            "deployment.yaml",
            r#"
apiVersion: apps/v1
kind: Deployment
metadata:
  name: {{ .Release.Name }}-jobmanager
spec:
  replicas: {{ .Values.replicas }}
  selector:
    matchLabels:
      app: flink
  template:
    metadata:
      labels:
        app: flink
    spec:
      containers:
        - name: flink
          image: bitnami/flink
          ports:
            - containerPort: 6121
            - containerPort: 6123
            - containerPort: 8081
"#,
        )
        .template(
            "service.yaml",
            r#"
apiVersion: v1
kind: Service
metadata:
  name: {{ .Release.Name }}-ui
spec:
  selector:
    app: flink
  ports:
    - port: 8081
---
apiVersion: v1
kind: Service
metadata:
  name: {{ .Release.Name }}-debug
spec:
  selector:
    app: flink
  ports:
    - port: 6130
      targetPort: 6130
"#,
        )
        .build();

    // What the container actually does at runtime (netstat's view,
    // Figure 1b).
    let mut behaviors = BehaviorRegistry::new();
    behaviors.register(
        "bitnami/flink",
        ContainerBehavior::Listeners(vec![
            ListenerSpec::tcp(6123),
            ListenerSpec::tcp(8081),
            ListenerSpec::ephemeral(), // the 43271 of Figure 1b
        ]),
    );

    // Fresh cluster, baseline before install (§4.2).
    let mut cluster = Cluster::new(ClusterConfig {
        nodes: 3,
        seed: 7,
        behaviors,
    });
    let baseline = HostBaseline::capture(&cluster);
    let release = Release::new("demo", "default");
    let rendered = chart.render(&release).expect("chart renders");
    cluster.install(&rendered).expect("admission allows");

    // Runtime analysis: two snapshots around a restart.
    let runtime = RuntimeAnalyzer::default().analyze(&mut cluster, &baseline);

    // Hybrid rule evaluation.
    let findings = Analyzer::hybrid().analyze_app(
        "flink",
        &rendered.objects,
        &cluster,
        Some(&runtime),
        chart_defines_network_policies(&chart),
    );

    println!("analyzed chart `flink` — {} finding(s)\n", findings.len());
    for f in &findings {
        println!("[{}] {:?} — {}", f.id, f.id.severity(), f.id.description());
        println!("    object: {}", f.object);
        println!("    detail: {}", f.detail);
        println!("    fix:    {}\n", f.id.mitigation());
    }

    assert!(
        findings.iter().any(|f| f.id.as_str() == "M2"),
        "the ephemeral port should be flagged"
    );
    assert!(
        findings
            .iter()
            .any(|f| f.id.as_str() == "M3" && f.port == Some(6121)),
        "the never-opened 6121 should be flagged"
    );
}
