//! Render round-trip edge cases the seed suite left untested: block-scalar
//! styles, CRLF input, and quoted keys — each through `parse_all` (the
//! entry point the chart render pipeline feeds rendered manifests into) and
//! back through the emitter.

use ij_yaml::{parse, parse_all, to_string, Value};

fn reparse(v: &Value) -> Value {
    let text = to_string(v);
    parse(&text).unwrap_or_else(|e| panic!("reparse failed: {e}\n---\n{text}"))
}

// ---------------------------------------------------------------------------
// Block-scalar styles.
// ---------------------------------------------------------------------------

#[test]
fn literal_block_styles_keep_or_strip_the_final_newline() {
    for (style, expected) in [
        ("|", "line one\nline two\n"),
        ("|+", "line one\nline two\n"),
        ("|-", "line one\nline two"),
    ] {
        let src = format!("script: {style}\n  line one\n  line two\n");
        let v = parse(&src).unwrap();
        assert_eq!(v.path(&["script"]), Some(&Value::str(expected)), "{style}");
    }
}

#[test]
fn folded_block_styles_join_lines_with_spaces() {
    for (style, expected) in [
        (">", "folded into one line\n"),
        (">+", "folded into one line\n"),
        (">-", "folded into one line"),
    ] {
        let src = format!("msg: {style}\n  folded into\n  one line\n");
        let v = parse(&src).unwrap();
        assert_eq!(v.path(&["msg"]), Some(&Value::str(expected)), "{style}");
    }
}

#[test]
fn block_scalar_preserves_deeper_indentation() {
    let v = parse("script: |\n  if true; then\n    echo nested\n  fi\n").unwrap();
    assert_eq!(
        v.path(&["script"]),
        Some(&Value::str("if true; then\n  echo nested\nfi\n"))
    );
}

#[test]
fn empty_block_scalar_is_empty_string() {
    let v = parse("script: |\nafter: 1\n").unwrap();
    assert_eq!(v.path(&["script"]), Some(&Value::str("")));
    assert_eq!(v.path(&["after"]), Some(&Value::Int(1)));
}

#[test]
fn block_scalars_round_trip_through_the_emitter() {
    for src in [
        "script: |\n  line one\n  line two\n",
        "script: |-\n  just this\n",
        "msg: >-\n  folded into\n  one line\n",
    ] {
        let v = parse(src).unwrap();
        assert_eq!(reparse(&v), v, "round trip of {src:?}");
    }
}

#[test]
fn block_scalar_inside_multi_document_stream() {
    let docs = parse_all("---\na: |\n  text\n---\nb: 2\n").unwrap();
    assert_eq!(docs.len(), 2);
    assert_eq!(docs[0].path(&["a"]), Some(&Value::str("text\n")));
    assert_eq!(docs[1].path(&["b"]), Some(&Value::Int(2)));
}

// ---------------------------------------------------------------------------
// CRLF input: rendered manifests that passed through Windows tooling.
// ---------------------------------------------------------------------------

#[test]
fn crlf_input_parses_like_lf() {
    let lf = "a: 1\nnested:\n  b: two\nports:\n  - 80\n  - 443\n";
    let crlf = lf.replace('\n', "\r\n");
    assert_eq!(parse(&crlf).unwrap(), parse(lf).unwrap());
}

#[test]
fn crlf_multi_document_stream_splits_on_markers() {
    let src = "---\r\na: 1\r\n---\r\nb: 2\r\n";
    let docs = parse_all(src).unwrap();
    assert_eq!(docs.len(), 2);
    assert_eq!(docs[0].path(&["a"]), Some(&Value::Int(1)));
    assert_eq!(docs[1].path(&["b"]), Some(&Value::Int(2)));
}

#[test]
fn crlf_block_scalar_lines_are_trimmed_of_carriage_returns() {
    let v = parse("script: |\r\n  line one\r\n  line two\r\n").unwrap();
    assert_eq!(
        v.path(&["script"]),
        Some(&Value::str("line one\nline two\n"))
    );
}

#[test]
fn crlf_document_round_trips() {
    let v = parse("kind: Service\r\nspec:\r\n  ports:\r\n    - port: 80\r\n").unwrap();
    assert_eq!(reparse(&v), v);
}

// ---------------------------------------------------------------------------
// Quoted keys.
// ---------------------------------------------------------------------------

#[test]
fn quoted_keys_in_parse_all_documents() {
    let docs = parse_all("---\n\"odd: key\": 1\n---\n'spaced key': 2\n").unwrap();
    assert_eq!(docs.len(), 2);
    assert_eq!(docs[0].path(&["odd: key"]), Some(&Value::Int(1)));
    assert_eq!(docs[1].path(&["spaced key"]), Some(&Value::Int(2)));
}

#[test]
fn double_quoted_key_unescapes() {
    let v = parse("\"tab\\tkey\": x\n").unwrap();
    assert_eq!(v.path(&["tab\tkey"]), Some(&Value::str("x")));
}

#[test]
fn single_quoted_key_keeps_doubled_quote() {
    let v = parse("'it''s': 1\n").unwrap();
    assert_eq!(v.path(&["it's"]), Some(&Value::Int(1)));
}

#[test]
fn quoted_numeric_key_stays_a_string_key() {
    // A port-number annotation key, the k8s-manifest shape that forces
    // quoting.
    let v = parse("\"8080\": http\n").unwrap();
    assert_eq!(v.path(&["8080"]), Some(&Value::str("http")));
}

#[test]
fn quoted_keys_round_trip_through_the_emitter() {
    for src in [
        "\"odd: key\": 1\n",
        "\"8080\": http\n",
        "annotations:\n  \"nested: odd\": here\n",
    ] {
        let v = parse(src).unwrap();
        assert_eq!(reparse(&v), v, "round trip of {src:?}");
    }
}

#[test]
fn quoted_keys_in_flow_mappings() {
    let v = parse("selector: {\"odd: key\": a, plain: b}\n").unwrap();
    assert_eq!(v.path(&["selector", "odd: key"]), Some(&Value::str("a")));
    assert_eq!(v.path(&["selector", "plain"]), Some(&Value::str("b")));
}
