//! Deriving NetworkPolicies from declared ports (the paper's future-work
//! direction, implemented by `ij-guard`).
//!
//! ```sh
//! cargo run --example policy_synthesis
//! ```
//!
//! Installs an application with undeclared listeners, shows the attacker's
//! view of the cluster before and after applying synthesized policies, and
//! prints the generated manifests.

use inside_job::cluster::{
    BehaviorRegistry, Cluster, ClusterConfig, ContainerBehavior, ListenerSpec,
};
use inside_job::core::StaticModel;
use inside_job::guard::PolicySynthesizer;
use inside_job::model::{Container, ContainerPort, Labels, Object, ObjectMeta, Pod, PodSpec};
use inside_job::probe::reachable_pod_endpoints;

fn main() {
    let mut behaviors = BehaviorRegistry::new();
    // The API server opens its declared port plus a debug backdoor.
    behaviors.register(
        "acme/api",
        ContainerBehavior::Listeners(vec![ListenerSpec::tcp(8443), ListenerSpec::tcp(6060)]),
    );
    let mut cluster = Cluster::new(ClusterConfig {
        nodes: 2,
        seed: 31,
        behaviors,
    });

    for (name, image, port) in [
        ("api", "acme/api", 8443u16),
        ("db", "acme/db", 5432),
        ("cache", "acme/cache", 6379),
    ] {
        cluster
            .apply(Object::Pod(Pod::new(
                ObjectMeta::named(name).with_labels(Labels::from_pairs([("app", name)])),
                PodSpec {
                    containers: vec![
                        Container::new(name, image).with_ports(vec![ContainerPort::tcp(port)])
                    ],
                    ..Default::default()
                },
            )))
            .expect("apply");
    }
    cluster
        .apply(Object::Pod(Pod::new(
            ObjectMeta::named("attacker"),
            PodSpec {
                containers: vec![Container::new("sh", "attacker/recon")],
                ..Default::default()
            },
        )))
        .expect("apply");
    cluster.reconcile();

    let before = reachable_pod_endpoints(&cluster, "default/attacker");
    println!(
        "attacker-reachable endpoints BEFORE synthesis ({}):",
        before.len()
    );
    for ep in &before {
        println!("  {} {}/{}", ep.pod, ep.port, ep.protocol);
    }
    assert!(
        before.iter().any(|e| e.port == 6060),
        "the undeclared debug port is exposed"
    );

    // Synthesize declared-ports-only policies from the live object set.
    let statics = StaticModel::from_objects(cluster.objects());
    let outcome = PolicySynthesizer::new().synthesize(&statics);
    println!("\nsynthesized {} policies:", outcome.policies.len());
    for policy in &outcome.policies {
        println!(
            "---\n{}",
            Object::NetworkPolicy(policy.clone()).to_manifest()
        );
    }
    for obj in outcome.objects() {
        cluster.apply(obj).expect("policies admitted");
    }

    let after = reachable_pod_endpoints(&cluster, "default/attacker");
    println!(
        "attacker-reachable endpoints AFTER synthesis ({}):",
        after.len()
    );
    for ep in &after {
        println!("  {} {}/{}", ep.pod, ep.port, ep.protocol);
    }
    assert!(
        after.iter().all(|e| e.port != 6060),
        "the debug port is no longer reachable"
    );
    // Declared service ports survive.
    assert!(after.iter().any(|e| e.port == 8443));
    assert!(after.iter().any(|e| e.port == 5432));
    println!("\ndeclared ports stay reachable; the undeclared backdoor is closed");
}
