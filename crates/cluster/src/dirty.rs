//! Dirty-set tracking: which applications a stream of cluster mutations
//! touched, so continuous-audit tooling can re-analyze only what changed.
//!
//! Every mutation that bumps [`Cluster::generation`](crate::Cluster::generation)
//! also records one [`DirtyEntry`] in a bounded log. An auditor remembers the
//! generation it last audited and asks
//! [`Cluster::dirty_since`](crate::Cluster::dirty_since) for a merged
//! [`DirtySummary`] of everything after that cursor. The log is a ring: when
//! it overflows (or the cluster is reset) old cursors fall off its horizon
//! and the summary degrades to a conservative everything-dirty answer — the
//! auditor falls back to a full recompute instead of ever missing a change,
//! and the cluster's memory stays bounded no matter how long it serves.

use std::collections::{BTreeSet, VecDeque};

/// Maximum dirty-log entries retained before the ring starts dropping its
/// oldest generation (and cursors older than the horizon go conservative).
pub const DIRTY_LOG_CAP: usize = 4096;

/// Which release (application) a recorded mutation touched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirtyScope {
    /// Objects or pods stamped with one release annotation.
    App(String),
    /// Every installed release at once (pod restart sweeps, resets).
    AllApps,
    /// A change with no release attribution: bare objects applied outside
    /// any release. Per-release analysis is unaffected by construction —
    /// unattributed objects belong to no audited application — so auditors
    /// may skip re-analysis for these, subject to the flags they carry.
    Unattributed,
}

/// One recorded mutation, 1:1 with a generation bump.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirtyEntry {
    /// Whose findings the mutation can affect.
    pub scope: DirtyScope,
    /// The labelled object set changed (workloads, pods, services or
    /// namespaces applied or removed), so cluster-wide label analysis
    /// (`M4*`) must re-run. Network-policy-only changes leave this false.
    pub labels: bool,
    /// The running-pod set changed (starts, reaps, restarts), so runtime
    /// observations are stale.
    pub pods: bool,
}

impl DirtyEntry {
    /// An entry touching one release.
    pub fn app(name: impl Into<String>, labels: bool, pods: bool) -> Self {
        DirtyEntry {
            scope: DirtyScope::App(name.into()),
            labels,
            pods,
        }
    }
}

/// Everything that changed since a cursor generation, merged.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DirtySummary {
    /// The log no longer covers the cursor (ring overflow, reset, or a
    /// cursor from another cluster): treat the whole cluster as dirty.
    pub everything: bool,
    /// Every release is dirty (pod restart sweeps) even though the log
    /// still covers the cursor.
    pub all_apps: bool,
    /// Releases with recorded changes, in sorted order.
    pub apps: BTreeSet<String>,
    /// Changes without release attribution occurred.
    pub unattributed: bool,
    /// Some change affected labelled object sets (`M4*` inputs).
    pub labels: bool,
    /// Some change affected the running-pod set (runtime inputs).
    pub pods: bool,
}

impl DirtySummary {
    /// The conservative answer: recompute the world.
    pub fn everything() -> Self {
        DirtySummary {
            everything: true,
            all_apps: true,
            apps: BTreeSet::new(),
            unattributed: true,
            labels: true,
            pods: true,
        }
    }

    /// True when no change at all was recorded since the cursor.
    pub fn is_clean(&self) -> bool {
        !self.everything
            && !self.all_apps
            && self.apps.is_empty()
            && !self.unattributed
            && !self.labels
            && !self.pods
    }

    fn merge(&mut self, entry: &DirtyEntry) {
        match &entry.scope {
            DirtyScope::App(name) => {
                self.apps.insert(name.clone());
            }
            DirtyScope::AllApps => self.all_apps = true,
            DirtyScope::Unattributed => self.unattributed = true,
        }
        self.labels |= entry.labels;
        self.pods |= entry.pods;
    }
}

/// Bounded ring of per-generation dirty entries. Entry `i` describes the
/// mutation that produced generation `start + 1 + i`; the invariant
/// `start + entries.len() == cluster.generation` holds because every
/// generation bump records exactly one entry.
#[derive(Debug)]
pub(crate) struct DirtyLog {
    start: u64,
    entries: VecDeque<DirtyEntry>,
    cap: usize,
}

impl DirtyLog {
    pub(crate) fn new(start: u64, cap: usize) -> Self {
        DirtyLog {
            start,
            entries: VecDeque::new(),
            cap,
        }
    }

    /// Records the entry for a freshly bumped generation, dropping the
    /// oldest one when full.
    pub(crate) fn record(&mut self, entry: DirtyEntry) {
        if self.entries.len() == self.cap {
            self.entries.pop_front();
            self.start = self.start.wrapping_add(1);
        }
        self.entries.push_back(entry);
    }

    /// Forgets all history: every cursor older than `generation` now reads
    /// everything-dirty. Used on [`Cluster::reset`](crate::Cluster::reset).
    pub(crate) fn forget(&mut self, generation: u64) {
        self.entries.clear();
        self.start = generation;
    }

    /// Merged summary of the entries after `cursor`, where `current` is the
    /// cluster's present generation.
    pub(crate) fn summary_since(&self, cursor: u64, current: u64) -> DirtySummary {
        if cursor == current {
            return DirtySummary::default();
        }
        if cursor > current || cursor < self.start {
            return DirtySummary::everything();
        }
        let mut summary = DirtySummary::default();
        let skip = (cursor - self.start) as usize;
        for entry in self.entries.iter().skip(skip) {
            summary.merge(entry);
        }
        summary
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summaries_merge_scopes_and_flags() {
        let mut log = DirtyLog::new(0, 8);
        log.record(DirtyEntry::app("shop", true, false));
        log.record(DirtyEntry::app("blog", false, true));
        let s = log.summary_since(0, 2);
        assert!(!s.everything && !s.all_apps);
        assert_eq!(
            s.apps.iter().cloned().collect::<Vec<_>>(),
            vec!["blog".to_string(), "shop".to_string()]
        );
        assert!(s.labels && s.pods);
        // A later cursor sees only the tail.
        let tail = log.summary_since(1, 2);
        assert!(!tail.labels && tail.pods);
        assert_eq!(tail.apps.len(), 1);
        assert!(log.summary_since(2, 2).is_clean());
    }

    #[test]
    fn overflow_and_unknown_cursors_go_conservative() {
        let mut log = DirtyLog::new(0, 2);
        for _ in 0..5 {
            log.record(DirtyEntry {
                scope: DirtyScope::Unattributed,
                labels: false,
                pods: false,
            });
        }
        // Entries 0..3 fell off the ring: cursor 1 is below the horizon.
        assert!(log.summary_since(1, 5).everything);
        // Cursor 3 is the ring's start and still covered.
        let covered = log.summary_since(3, 5);
        assert!(!covered.everything && covered.unattributed);
        // A cursor from the future (another cluster) is never trusted.
        assert!(log.summary_since(9, 5).everything);
    }

    #[test]
    fn forget_invalidates_old_cursors() {
        let mut log = DirtyLog::new(0, 8);
        log.record(DirtyEntry::app("shop", true, true));
        log.forget(1);
        assert!(log.summary_since(0, 1).everything);
        assert!(log.summary_since(1, 1).is_clean());
    }
}
