//! # ij-yaml — a minimal, deterministic YAML subset
//!
//! Kubernetes manifests and Helm values files use a small, regular subset of
//! YAML: nested block maps, block sequences, plain/quoted scalars, comments,
//! multi-document streams separated by `---`, and occasionally literal block
//! scalars (`|`). This crate implements exactly that subset with
//! order-preserving maps, precise line-numbered errors, and a canonical
//! emitter, so the rest of the workspace does not need an external YAML
//! dependency.
//!
//! Intentionally unsupported: anchors/aliases, tags, complex (non-string) map
//! keys, and flow styles nested more than one level deep. Kubernetes objects
//! never need these, and refusing them keeps parsing deterministic.
//!
//! ```
//! use ij_yaml::{parse, Value};
//!
//! let doc = parse("
//! apiVersion: v1
//! kind: Service
//! metadata:
//!   name: web
//! spec:
//!   ports:
//!     - port: 80
//!       targetPort: 8080
//! ").unwrap();
//!
//! assert_eq!(doc.path(&["kind"]).and_then(Value::as_str), Some("Service"));
//! assert_eq!(doc.path(&["spec", "ports", "0", "port"]).and_then(Value::as_int), Some(80));
//! ```

mod emit;
mod error;
mod parse;
mod value;

pub use emit::{to_string, to_string_into};
pub use error::{Error, Result};
pub use parse::{parse, parse_all};
pub use value::{Map, Value};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_service() {
        let src = "\
apiVersion: v1
kind: Service
metadata:
  name: web
  labels:
    app: web
spec:
  type: ClusterIP
  selector:
    app: web
  ports:
    - name: http
      port: 80
      targetPort: 8080
      protocol: TCP
";
        let v = parse(src).unwrap();
        let emitted = to_string(&v);
        let reparsed = parse(&emitted).unwrap();
        assert_eq!(v, reparsed);
    }

    #[test]
    fn multi_document_stream() {
        let docs = parse_all("a: 1\n---\nb: 2\n---\nc: 3\n").unwrap();
        assert_eq!(docs.len(), 3);
        assert_eq!(docs[1].path(&["b"]).and_then(Value::as_int), Some(2));
    }
}
