//! Endpoints: the concrete pod addresses behind a service, as computed by the
//! endpoints controller in the simulator.

use crate::meta::ObjectMeta;
use crate::pod::Protocol;
use serde::{Deserialize, Serialize};

/// A single ready address backing a service port.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EndpointAddress {
    /// Pod IP.
    pub ip: String,
    /// Backing pod's qualified name (`namespace/name`).
    pub pod: String,
    /// Resolved numeric target port on that pod.
    pub port: u16,
    /// Protocol of the mapping.
    pub protocol: Protocol,
    /// Name of the service port this address backs (if the service named it).
    pub port_name: Option<String>,
}

/// The endpoints object for one service.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Endpoints {
    /// Mirrors the service's metadata.
    pub meta: ObjectMeta,
    /// Ready addresses. Empty when the service selects no running pod — the
    /// observable symptom of M5D.
    pub addresses: Vec<EndpointAddress>,
}

impl Endpoints {
    /// True when no pod backs the service.
    pub fn is_empty(&self) -> bool {
        self.addresses.is_empty()
    }

    /// Distinct backing pods.
    pub fn pod_count(&self) -> usize {
        let mut pods: Vec<&str> = self.addresses.iter().map(|a| a.pod.as_str()).collect();
        pods.sort_unstable();
        pods.dedup();
        pods.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pod_count_dedupes() {
        let ep = Endpoints {
            meta: ObjectMeta::named("svc"),
            addresses: vec![
                EndpointAddress {
                    ip: "10.0.0.1".into(),
                    pod: "default/a".into(),
                    port: 80,
                    protocol: Protocol::Tcp,
                    port_name: None,
                },
                EndpointAddress {
                    ip: "10.0.0.1".into(),
                    pod: "default/a".into(),
                    port: 443,
                    protocol: Protocol::Tcp,
                    port_name: None,
                },
                EndpointAddress {
                    ip: "10.0.0.2".into(),
                    pod: "default/b".into(),
                    port: 80,
                    protocol: Protocol::Tcp,
                    port_name: None,
                },
            ],
        };
        assert_eq!(ep.pod_count(), 2);
        assert!(!ep.is_empty());
    }
}
