//! Property tests for label algebra and object codec round trips.

use ij_model::{
    decode_manifest, ContainerPort, LabelInterner, LabelSelector, Labels, NetworkPolicy,
    NetworkPolicyPeer, Object, ObjectMeta, PolicyPort, Protocol, SelectorMatcher, SelectorOp,
    SelectorRequirement, Service, ServicePort,
};
use proptest::prelude::*;

fn arb_labels() -> impl Strategy<Value = Labels> {
    prop::collection::btree_map("[a-z]{1,6}", "[a-z0-9]{1,6}", 0..5).prop_map(Labels)
}

fn arb_port() -> impl Strategy<Value = u16> {
    1u16..=65535
}

fn arb_protocol() -> impl Strategy<Value = Protocol> {
    prop_oneof![
        Just(Protocol::Tcp),
        Just(Protocol::Udp),
        Just(Protocol::Sctp)
    ]
}

/// A deliberately narrow alphabet so selectors and label sets collide often
/// — the interesting cases for matcher equivalence.
fn arb_dense_labels() -> impl Strategy<Value = Labels> {
    prop::collection::btree_map("[ab]", "[xy]", 0..3).prop_map(Labels)
}

fn arb_selector() -> impl Strategy<Value = LabelSelector> {
    let op = prop_oneof![
        Just(SelectorOp::In),
        Just(SelectorOp::NotIn),
        Just(SelectorOp::Exists),
        Just(SelectorOp::DoesNotExist)
    ];
    let requirement = ("[abc]", op, prop::collection::vec("[xyz]", 0..3))
        .prop_map(|(key, op, values)| SelectorRequirement { key, op, values });
    (arb_dense_labels(), prop::collection::vec(requirement, 0..3)).prop_map(
        |(match_labels, match_expressions)| LabelSelector {
            match_labels,
            match_expressions,
        },
    )
}

proptest! {
    #[test]
    fn contains_all_is_reflexive(l in arb_labels()) {
        prop_assert!(l.contains_all(&l));
    }

    #[test]
    fn contains_all_is_transitive(a in arb_labels(), b in arb_labels(), c in arb_labels()) {
        if a.contains_all(&b) && b.contains_all(&c) {
            prop_assert!(a.contains_all(&c));
        }
    }

    #[test]
    fn empty_labels_are_bottom(l in arb_labels()) {
        prop_assert!(l.contains_all(&Labels::new()));
    }

    #[test]
    fn equality_selector_matches_iff_subset(pod in arb_labels(), sel in arb_labels()) {
        let selector = LabelSelector::from_labels(sel.clone());
        prop_assert_eq!(selector.matches(&pod), pod.contains_all(&sel));
    }

    /// The compiled [`SelectorMatcher`] agrees with the string-based
    /// [`LabelSelector::matches`] on every candidate label set, whichever
    /// order selector and candidates hit the intern table.
    #[test]
    fn compiled_selector_equals_naive(
        selector in arb_selector(),
        candidates in prop::collection::vec(arb_dense_labels(), 1..6),
        compile_first in any::<bool>(),
    ) {
        let mut interner = LabelInterner::new();
        if compile_first {
            let matcher = SelectorMatcher::compile(&selector, &mut interner);
            for labels in &candidates {
                let set = interner.intern(labels);
                prop_assert_eq!(matcher.matches(&set), selector.matches(labels), "{selector:?} vs {labels}");
            }
        } else {
            let sets: Vec<_> = candidates.iter().map(|l| interner.intern(l)).collect();
            let matcher = SelectorMatcher::compile(&selector, &mut interner);
            for (labels, set) in candidates.iter().zip(&sets) {
                prop_assert_eq!(matcher.matches(set), selector.matches(labels), "{selector:?} vs {labels}");
            }
        }
    }

    /// Interned `contains_all` is exactly the string subset relation.
    #[test]
    fn interned_contains_all_equals_subset(a in arb_dense_labels(), b in arb_dense_labels()) {
        let mut interner = LabelInterner::new();
        let set_a = interner.intern(&a);
        let matcher = SelectorMatcher::compile(&LabelSelector::from_labels(b.clone()), &mut interner);
        prop_assert_eq!(matcher.matches(&set_a), a.contains_all(&b));
    }

    #[test]
    fn service_round_trips(
        labels in arb_labels(),
        selector in arb_labels(),
        port in arb_port(),
        target in arb_port(),
        protocol in arb_protocol(),
        headless in any::<bool>(),
    ) {
        let mut sp = ServicePort::tcp_to(port, target);
        sp.protocol = protocol;
        let svc = if headless {
            Service::headless(
                ObjectMeta::named("svc").with_labels(labels),
                selector,
                vec![sp],
            )
        } else {
            Service::cluster_ip(
                ObjectMeta::named("svc").with_labels(labels),
                selector,
                vec![sp],
            )
        };
        let obj = Object::Service(svc.clone());
        let text = obj.to_manifest();
        let back = decode_manifest(&text)
            .unwrap_or_else(|e| panic!("decode failed: {e}\n{text}"));
        prop_assert_eq!(back, obj);
    }

    #[test]
    fn container_port_round_trips(
        port in arb_port(),
        protocol in arb_protocol(),
        named in any::<bool>(),
    ) {
        let mut p = ContainerPort::tcp(port).with_protocol(protocol);
        if named {
            p.name = Some("metrics".into());
        }
        let pod = ij_model::Pod::new(
            ObjectMeta::named("p"),
            ij_model::PodSpec {
                containers: vec![ij_model::Container::new("c", "img").with_ports(vec![p])],
                ..Default::default()
            },
        );
        let obj = Object::Pod(pod);
        let back = decode_manifest(&obj.to_manifest()).expect("decode");
        prop_assert_eq!(back, obj);
    }

    #[test]
    fn policy_port_range_covers_exactly_range(
        from in 1u16..=60000,
        len in 0u16..=500,
        probe in 1u16..=65535,
    ) {
        let to = from.saturating_add(len);
        let p = PolicyPort::tcp_range(from, to);
        let resolve = |_: &str| None;
        prop_assert_eq!(
            p.covers(probe, Protocol::Tcp, &resolve),
            (from..=to).contains(&probe)
        );
        prop_assert!(!p.covers(probe, Protocol::Udp, &resolve));
    }

    #[test]
    fn network_policy_round_trips(
        pod_sel in arb_labels(),
        peer_sel in arb_labels(),
        port in arb_port(),
    ) {
        let np = NetworkPolicy::allow_ingress(
            ObjectMeta::named("np").in_namespace("prod"),
            LabelSelector::from_labels(pod_sel),
            vec![NetworkPolicyPeer::pods(LabelSelector::from_labels(peer_sel))],
            vec![PolicyPort::tcp(port)],
        );
        let obj = Object::NetworkPolicy(np);
        let back = decode_manifest(&obj.to_manifest()).expect("decode");
        prop_assert_eq!(back, obj);
    }
}
