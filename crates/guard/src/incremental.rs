//! The incremental continuous auditor: re-analyzes only what a mutation
//! touched.
//!
//! [`ContinuousAuditor`](crate::ContinuousAuditor) re-runs the full
//! analysis on every tick — fine for one app, quadratic waste for a tenant
//! cluster under churn. [`IncrementalAuditor`] instead remembers the
//! [`Cluster::generation`](ij_cluster::Cluster::generation) it last audited
//! and asks [`Cluster::dirty_since`](ij_cluster::Cluster::dirty_since) what
//! changed:
//!
//! * per-app rules re-run only for dirtied releases (installs, uninstalls,
//!   scale events, pod churn attributed to that release);
//! * the cluster-wide label pass (`M4*`) re-runs only when the labelled
//!   object set changed (`summary.labels`) or a release appeared or
//!   disappeared;
//! * everything else is served from the per-app finding cache.
//!
//! When the dirty ring no longer covers the cursor (overflow, reset, first
//! tick) the summary degrades to everything-dirty and the tick becomes a
//! full recompute — the same code path [`IncrementalAuditor::full_tick`]
//! exposes as the property-tested oracle. Deltas are diffed as multisets
//! keyed by [`Finding::identity`] via [`AuditDelta::between`].

use std::collections::BTreeMap;

use ij_cluster::{Cluster, DirtySummary, RELEASE_ANNOTATION};
use ij_core::{sort_canonical, Analyzer, Finding, StaticModel};
use ij_model::Object;
use ij_probe::{HostBaseline, RuntimeAnalyzer, RuntimeReport};

use crate::audit::AuditDelta;

/// Cached per-release analysis state.
struct AppState {
    findings: Vec<Finding>,
    statics: StaticModel,
}

/// A delta-aware auditor for a whole multi-release cluster. See the module
/// docs for the re-evaluation policy.
pub struct IncrementalAuditor {
    analyzer: Analyzer,
    probe: Option<(RuntimeAnalyzer, HostBaseline)>,
    defines_policies: BTreeMap<String, bool>,
    cursor: Option<u64>,
    apps: BTreeMap<String, AppState>,
    global: Vec<Finding>,
    previous: Vec<Finding>,
}

impl Default for IncrementalAuditor {
    fn default() -> Self {
        IncrementalAuditor::new()
    }
}

impl IncrementalAuditor {
    /// A static-only auditor (manifest rules, no runtime probe).
    pub fn new() -> Self {
        IncrementalAuditor {
            analyzer: Analyzer::static_only(),
            probe: None,
            defines_policies: BTreeMap::new(),
            cursor: None,
            apps: BTreeMap::new(),
            global: Vec::new(),
            previous: Vec::new(),
        }
    }

    /// A hybrid auditor: static rules plus runtime findings from the
    /// non-mutating [`RuntimeAnalyzer::observe`] pass. The baseline must
    /// have been captured before any release was installed.
    pub fn with_probe(probe: RuntimeAnalyzer, baseline: HostBaseline) -> Self {
        IncrementalAuditor {
            analyzer: Analyzer::hybrid(),
            probe: Some((probe, baseline)),
            ..IncrementalAuditor::new()
        }
    }

    /// Records whether a release's chart ships NetworkPolicy templates (the
    /// M6 "defined but disabled" distinction). Call before or alongside the
    /// install; the install itself dirties the release.
    pub fn set_chart_defines_policies(&mut self, app: &str, defines: bool) {
        self.defines_policies.insert(app.to_string(), defines);
    }

    /// The most recent full finding list (canonically sorted).
    pub fn current(&self) -> &[Finding] {
        &self.previous
    }

    /// Number of releases with cached analysis state.
    pub fn tracked_apps(&self) -> usize {
        self.apps.len()
    }

    /// Runs one audit round, re-analyzing only what changed since the last
    /// round, and reports the delta.
    pub fn tick(&mut self, cluster: &Cluster) -> AuditDelta {
        let summary = match self.cursor {
            Some(cursor) => cluster.dirty_since(cursor),
            None => DirtySummary::everything(),
        };
        self.cursor = Some(cluster.generation());
        if summary.is_clean() {
            return AuditDelta {
                introduced: Vec::new(),
                resolved: Vec::new(),
                persisting: self.previous.clone(),
            };
        }

        // Group release-stamped objects; unattributed objects belong to no
        // audited release and are skipped by construction (they cannot
        // change any release's object set).
        let mut grouped: BTreeMap<&str, Vec<&Object>> = BTreeMap::new();
        for o in cluster.objects() {
            if let Some(release) = o.meta().annotations.get(RELEASE_ANNOTATION) {
                grouped.entry(release.as_str()).or_default().push(o);
            }
        }

        // Uninstalled releases drop out of the cache (and the finding set).
        let before = self.apps.len();
        self.apps
            .retain(|name, _| grouped.contains_key(name.as_str()));
        let mut apps_changed = self.apps.len() != before;

        let recompute_all = summary.everything || summary.all_apps;
        let needs_recompute = |apps: &BTreeMap<String, AppState>, name: &str| {
            recompute_all || summary.apps.contains(name) || !apps.contains_key(name)
        };
        let any_dirty = grouped.keys().any(|name| needs_recompute(&self.apps, name));
        let report: Option<RuntimeReport> = match &self.probe {
            Some((probe, baseline)) if any_dirty => Some(probe.observe(cluster, baseline)),
            _ => None,
        };
        for (name, refs) in &grouped {
            if !needs_recompute(&self.apps, name) {
                continue;
            }
            apps_changed |= !self.apps.contains_key(*name);
            let objects: Vec<Object> = refs.iter().map(|&o| o.clone()).collect();
            let defines = self.defines_policies.get(*name).copied().unwrap_or(false);
            let findings =
                self.analyzer
                    .analyze_app(name, &objects, cluster, report.as_ref(), defines);
            let statics = StaticModel::from_objects(&objects);
            self.apps
                .insert((*name).to_string(), AppState { findings, statics });
        }

        // The cluster-wide label pass sees every release at once, so it
        // must re-run when labelled objects changed anywhere or the release
        // set itself moved.
        if recompute_all || summary.labels || apps_changed {
            let models: Vec<(String, StaticModel)> = self
                .apps
                .iter()
                .map(|(name, state)| (name.clone(), state.statics.clone()))
                .collect();
            self.global = self.analyzer.analyze_global(&models);
        }

        let mut current: Vec<Finding> = self
            .apps
            .values()
            .flat_map(|state| state.findings.iter().cloned())
            .collect();
        current.extend(self.global.iter().cloned());
        sort_canonical(&mut current);
        let delta = AuditDelta::between(&self.previous, &current);
        self.previous = current;
        delta
    }

    /// The full-recompute oracle: forgets every cache and re-analyzes the
    /// whole cluster through the same code path. Incremental [`tick`]s must
    /// produce byte-identical finding lists and deltas — the property the
    /// `incremental_audit` test suite enforces over random mutation
    /// streams.
    ///
    /// [`tick`]: IncrementalAuditor::tick
    pub fn full_tick(&mut self, cluster: &Cluster) -> AuditDelta {
        self.apps.clear();
        self.global.clear();
        self.cursor = None;
        self.tick(cluster)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ij_chart::{Chart, Release};
    use ij_cluster::{BehaviorRegistry, Cluster, ClusterConfig};
    use ij_core::MisconfigId;

    fn demo_chart(app_label: &str) -> Chart {
        Chart::builder("demo")
            .template(
                "deploy.yaml",
                format!(
                    "\
apiVersion: apps/v1
kind: Deployment
metadata:
  name: {{{{ .Release.Name }}}}-web
spec:
  replicas: 2
  selector:
    matchLabels:
      app: {app_label}
  template:
    metadata:
      labels:
        app: {app_label}
    spec:
      containers:
        - name: web
          image: demo/web
          ports:
            - name: http
              containerPort: 8080
"
                ),
            )
            .build()
    }

    fn install(cluster: &mut Cluster, release: &str, app_label: &str) {
        let rendered = demo_chart(app_label)
            .render(&Release::new(release, "default"))
            .unwrap();
        cluster.install(&rendered).unwrap();
    }

    #[test]
    fn tracks_releases_and_matches_the_full_oracle() {
        let mut cluster = Cluster::new(ClusterConfig {
            nodes: 3,
            seed: 5,
            behaviors: BehaviorRegistry::new(),
        });
        let mut incremental = IncrementalAuditor::new();
        let mut oracle = IncrementalAuditor::new();

        install(&mut cluster, "shop", "shop");
        let delta = incremental.tick(&cluster);
        let full = oracle.full_tick(&cluster);
        assert_eq!(delta.introduced, full.introduced);
        assert!(delta.introduced.iter().any(|f| f.id == MisconfigId::M6));
        assert_eq!(incremental.tracked_apps(), 1);

        // A second release with colliding labels: both sides must surface
        // the cross-app label collision and agree byte-for-byte.
        install(&mut cluster, "imposter", "shop");
        let delta = incremental.tick(&cluster);
        let full = oracle.full_tick(&cluster);
        assert_eq!(incremental.current(), oracle.current());
        assert_eq!(delta.introduced, full.introduced);
        assert_eq!(delta.persisting, full.persisting);
        assert!(delta.introduced.iter().any(|f| f.id == MisconfigId::M4Star));

        // Quiet round: no mutation, no work, no delta.
        let quiet = incremental.tick(&cluster);
        assert!(quiet.is_quiet());
        assert_eq!(quiet.persisting, incremental.current());

        // Uninstall resolves the imposter's findings on both sides.
        cluster.uninstall("imposter");
        let delta = incremental.tick(&cluster);
        let full = oracle.full_tick(&cluster);
        assert_eq!(incremental.current(), oracle.current());
        assert_eq!(delta.resolved, full.resolved);
        assert!(delta.resolved.iter().any(|f| f.id == MisconfigId::M4Star));
        assert_eq!(incremental.tracked_apps(), 1);
    }

    #[test]
    fn probe_backed_auditor_agrees_with_oracle() {
        let mut cluster = Cluster::new(ClusterConfig {
            nodes: 3,
            seed: 5,
            behaviors: BehaviorRegistry::new(),
        });
        let baseline = HostBaseline::capture(&cluster);
        let mut incremental =
            IncrementalAuditor::with_probe(RuntimeAnalyzer::default(), baseline.clone());
        let mut oracle = IncrementalAuditor::with_probe(RuntimeAnalyzer::default(), baseline);

        install(&mut cluster, "shop", "shop");
        incremental.tick(&cluster);
        oracle.full_tick(&cluster);
        assert_eq!(incremental.current(), oracle.current());

        install(&mut cluster, "blog", "blog");
        cluster.scale_workload("default/shop-web", 0);
        cluster.reconcile();
        incremental.tick(&cluster);
        oracle.full_tick(&cluster);
        assert_eq!(incremental.current(), oracle.current());
    }
}
