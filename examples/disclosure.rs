//! Generating a responsible-disclosure package (§5 / Appendix A.1).
//!
//! ```sh
//! cargo run --example disclosure
//! ```
//!
//! Audits the Wikimedia dataset and renders the markdown disclosure report
//! the paper's authors would send: threat model, per-class explanations and
//! mitigations, the affected charts with their concrete findings, and the
//! Figure 5 feedback questionnaire.

use inside_job::core::disclosure_report;
use inside_job::datasets::{corpus, run_census, CorpusOptions, Org};

fn main() {
    let wikimedia: Vec<_> = corpus()
        .into_iter()
        .filter(|a| a.org == Org::Wikimedia)
        .collect();
    println!(
        "analyzing {} Wikimedia charts and drafting the disclosure…\n",
        wikimedia.len()
    );
    let census = run_census(&wikimedia, &CorpusOptions::default())
        .expect("the synthetic corpus renders and installs");
    let report = disclosure_report(&census, "Wikimedia");
    println!("{report}");

    // The report is self-contained: threat model, mitigations, findings.
    assert!(report.contains("Threat model"));
    assert!(report.contains("Suggested mitigation"));
    assert!(report.contains("ipoid"));
    assert!(report.contains("Questionnaire"));
}
